use std::fmt;

/// A minimum-weight T-join problem instance.
///
/// The graph is an abstract multigraph (no embedding needed); weights must
/// be non-negative, self-loops are rejected (a self-loop is never part of a
/// minimal T-join).
#[derive(Clone, Debug)]
pub struct TJoinInstance {
    node_count: usize,
    edges: Vec<(usize, usize, i64)>,
    t: Vec<bool>,
    adj: Vec<Vec<usize>>, // edge indices per node
}

/// Errors produced by T-join construction and solving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TJoinError {
    /// An edge is malformed (self-loop, out-of-range endpoint, negative
    /// weight).
    BadEdge {
        /// Index of the offending edge.
        index: usize,
        /// Explanation.
        reason: &'static str,
    },
    /// `t.len() != node_count`.
    BadTSet,
    /// Some connected component contains an odd number of T-nodes, so no
    /// T-join exists.
    Infeasible {
        /// A node of an offending component.
        witness: usize,
    },
    /// The solve ran out of budget (wall-clock deadline, work cap, or
    /// cooperative cancellation). The partial state is discarded; callers
    /// may retry with a larger budget or degrade to a heuristic.
    Budget(aapsm_fault::BudgetExceeded),
    /// An internal invariant of a reduction was violated. Never expected to
    /// occur; reported as an error instead of panicking so library callers
    /// stay isolated from solver bugs.
    Internal {
        /// Which invariant broke.
        context: &'static str,
    },
}

impl From<aapsm_fault::BudgetExceeded> for TJoinError {
    fn from(e: aapsm_fault::BudgetExceeded) -> Self {
        TJoinError::Budget(e)
    }
}

impl fmt::Display for TJoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TJoinError::BadEdge { index, reason } => {
                write!(f, "edge {index} is malformed: {reason}")
            }
            TJoinError::BadTSet => write!(f, "t-set length does not match node count"),
            TJoinError::Infeasible { witness } => write!(
                f,
                "no T-join exists: component of node {witness} has an odd number of T-nodes"
            ),
            TJoinError::Budget(e) => write!(f, "t-join solve out of budget: {e}"),
            TJoinError::Internal { context } => {
                write!(f, "t-join solver invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for TJoinError {}

/// A T-join: a set of instance edge indices and their total weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TJoin {
    /// Indices into [`TJoinInstance::edges`], ascending.
    pub edges: Vec<usize>,
    /// Total weight.
    pub weight: i64,
}

impl TJoinInstance {
    /// Builds an instance.
    ///
    /// # Errors
    ///
    /// Returns [`TJoinError::BadEdge`] / [`TJoinError::BadTSet`] on
    /// malformed input. Feasibility (even T per component) is *not*
    /// checked here; solvers report it.
    pub fn new(
        node_count: usize,
        edges: Vec<(usize, usize, i64)>,
        t: Vec<bool>,
    ) -> Result<Self, TJoinError> {
        if t.len() != node_count {
            return Err(TJoinError::BadTSet);
        }
        for (i, &(u, v, w)) in edges.iter().enumerate() {
            if u >= node_count || v >= node_count {
                return Err(TJoinError::BadEdge {
                    index: i,
                    reason: "endpoint out of range",
                });
            }
            if u == v {
                return Err(TJoinError::BadEdge {
                    index: i,
                    reason: "self-loop",
                });
            }
            if w < 0 {
                return Err(TJoinError::BadEdge {
                    index: i,
                    reason: "negative weight",
                });
            }
        }
        let mut adj = vec![Vec::new(); node_count];
        for (i, &(u, v, _)) in edges.iter().enumerate() {
            adj[u].push(i);
            adj[v].push(i);
        }
        Ok(TJoinInstance {
            node_count,
            edges,
            t,
            adj,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The edge list.
    pub fn edges(&self) -> &[(usize, usize, i64)] {
        &self.edges
    }

    /// The T-set membership vector.
    pub fn t_set(&self) -> &[bool] {
        &self.t
    }

    /// Edge indices incident to `v`.
    pub fn incident(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v` in the multigraph.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Checks feasibility: every connected component must contain an even
    /// number of T-nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TJoinError::Infeasible`] naming a node of an odd
    /// component.
    pub fn check_feasible(&self) -> Result<(), TJoinError> {
        let comp = self.components();
        let comp_count = comp.iter().copied().max().map_or(0, |c| c + 1);
        let mut parity = vec![0u8; comp_count];
        for v in 0..self.node_count {
            if self.t[v] {
                parity[comp[v]] ^= 1;
            }
        }
        for v in 0..self.node_count {
            if self.t[v] && parity[comp[v]] == 1 {
                return Err(TJoinError::Infeasible { witness: v });
            }
        }
        Ok(())
    }

    /// Connected component index per node.
    pub fn components(&self) -> Vec<usize> {
        let mut comp = vec![usize::MAX; self.node_count];
        let mut count = 0;
        let mut stack = Vec::new();
        for s in 0..self.node_count {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = count;
            stack.push(s);
            while let Some(u) = stack.pop() {
                for &ei in &self.adj[u] {
                    let (a, b, _) = self.edges[ei];
                    let v = if a == u { b } else { a };
                    if comp[v] == usize::MAX {
                        comp[v] = count;
                        stack.push(v);
                    }
                }
            }
            count += 1;
        }
        comp
    }

    /// Whether `join` satisfies the T-join degree-parity conditions and
    /// has a consistent weight.
    pub fn is_valid_join(&self, join: &TJoin) -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut parity = vec![0u8; self.node_count];
        let mut weight = 0i64;
        for &ei in &join.edges {
            if ei >= self.edges.len() || !seen.insert(ei) {
                return false;
            }
            let (u, v, w) = self.edges[ei];
            parity[u] ^= 1;
            parity[v] ^= 1;
            weight += w;
        }
        weight == join.weight && (0..self.node_count).all(|v| (parity[v] == 1) == self.t[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            TJoinInstance::new(2, vec![(0, 0, 1)], vec![false, false]),
            Err(TJoinError::BadEdge { .. })
        ));
        assert!(matches!(
            TJoinInstance::new(2, vec![(0, 5, 1)], vec![false, false]),
            Err(TJoinError::BadEdge { .. })
        ));
        assert!(matches!(
            TJoinInstance::new(2, vec![(0, 1, -1)], vec![false, false]),
            Err(TJoinError::BadEdge { .. })
        ));
        assert!(matches!(
            TJoinInstance::new(2, vec![], vec![false]),
            Err(TJoinError::BadTSet)
        ));
    }

    #[test]
    fn feasibility_per_component() {
        // Two components: {0,1} and {2,3}. One T-node in each: infeasible.
        let inst = TJoinInstance::new(
            4,
            vec![(0, 1, 1), (2, 3, 1)],
            vec![true, false, true, false],
        )
        .unwrap();
        assert!(inst.check_feasible().is_err());
        // Two T-nodes in one component: feasible.
        let inst = TJoinInstance::new(
            4,
            vec![(0, 1, 1), (2, 3, 1)],
            vec![true, true, false, false],
        )
        .unwrap();
        assert!(inst.check_feasible().is_ok());
    }

    #[test]
    fn join_validation() {
        let inst =
            TJoinInstance::new(3, vec![(0, 1, 4), (1, 2, 5)], vec![true, false, true]).unwrap();
        assert!(inst.is_valid_join(&TJoin {
            edges: vec![0, 1],
            weight: 9
        }));
        // Wrong parity.
        assert!(!inst.is_valid_join(&TJoin {
            edges: vec![0],
            weight: 4
        }));
        // Wrong weight.
        assert!(!inst.is_valid_join(&TJoin {
            edges: vec![0, 1],
            weight: 8
        }));
        // Duplicate edge.
        assert!(!inst.is_valid_join(&TJoin {
            edges: vec![0, 0],
            weight: 8
        }));
    }

    #[test]
    fn isolated_t_node_is_infeasible() {
        let inst = TJoinInstance::new(2, vec![], vec![true, false]).unwrap();
        assert!(inst.check_feasible().is_err());
    }
}
