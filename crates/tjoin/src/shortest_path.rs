//! The Edmonds–Johnson shortest-path reduction for minimum-weight T-joins.

use crate::{TJoin, TJoinError, TJoinInstance};
use aapsm_fault::Budget;
use aapsm_matching::MatchingContext;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Solves a T-join via all-pairs shortest paths among T-nodes:
///
/// 1. run Dijkstra from every T-node,
/// 2. find a minimum-weight perfect matching on the complete graph over
///    the T-nodes with shortest-path distances as weights,
/// 3. take the symmetric difference of the matched shortest paths.
///
/// The symmetric difference step matters: matched paths may share edges,
/// and XOR-ing them preserves the degree parity while never increasing the
/// weight, so the result is an optimal T-join.
///
/// Uses the calling thread's shared [`MatchingContext`]; see
/// [`solve_shortest_path_with`] to control solver-arena reuse explicitly.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some component has an odd
/// number of T-nodes.
pub fn solve_shortest_path(inst: &TJoinInstance) -> Result<TJoin, TJoinError> {
    aapsm_matching::with_thread_context(|ctx| solve_shortest_path_with(inst, ctx))
}

/// [`solve_shortest_path`] against a caller-owned matching arena.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some component has an odd
/// number of T-nodes.
pub fn solve_shortest_path_with(
    inst: &TJoinInstance,
    ctx: &mut MatchingContext,
) -> Result<TJoin, TJoinError> {
    solve_shortest_path_budgeted(inst, ctx, &Budget::unlimited())
}

/// [`solve_shortest_path_with`] under a [`Budget`]: the Blossom matching
/// over the T-node complete graph charges
/// [`aapsm_fault::Stage::Matching`] ticks and aborts early when it trips.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some component has an odd
/// number of T-nodes and [`TJoinError::Budget`] when the budget trips
/// inside the matching.
pub fn solve_shortest_path_budgeted(
    inst: &TJoinInstance,
    ctx: &mut MatchingContext,
    budget: &Budget,
) -> Result<TJoin, TJoinError> {
    inst.check_feasible()?;
    let t_nodes: Vec<usize> = (0..inst.node_count())
        .filter(|&v| inst.t_set()[v])
        .collect();
    if t_nodes.is_empty() {
        return Ok(TJoin {
            edges: Vec::new(),
            weight: 0,
        });
    }

    // Dijkstra from each T-node, remembering the parent edge for path
    // recovery.
    let mut dist_all = Vec::with_capacity(t_nodes.len());
    let mut parent_all = Vec::with_capacity(t_nodes.len());
    for &s in &t_nodes {
        let (dist, parent) = dijkstra(inst, s);
        dist_all.push(dist);
        parent_all.push(parent);
    }

    // Complete graph over T-nodes (only pairs in the same component).
    let mut matching_edges = Vec::new();
    for (i, dist_i) in dist_all.iter().enumerate() {
        for j in (i + 1)..t_nodes.len() {
            if let Some(d) = dist_i[t_nodes[j]] {
                matching_edges.push((i, j, d));
            }
        }
    }
    let Some(matching) =
        ctx.try_min_weight_perfect_matching(t_nodes.len(), &matching_edges, budget)?
    else {
        // `check_feasible` guarantees an even T count per component, which
        // makes the T-node distance graph perfectly matchable.
        debug_assert!(false, "even T per component yielded no perfect matching");
        return Err(TJoinError::Internal {
            context: "T-node distance graph of a feasible instance has no perfect matching",
        });
    };

    // XOR the matched shortest paths.
    let mut in_join = vec![false; inst.edges().len()];
    for (i, j) in matching.pairs() {
        let mut v = t_nodes[j];
        let target = t_nodes[i];
        while v != target {
            // Invariant: the matching only pairs T-nodes with a finite
            // distance, so the Dijkstra parent chain reaches the target.
            #[allow(clippy::expect_used)]
            let ei = parent_all[i][v].expect("path exists to matched partner");
            in_join[ei] ^= true;
            let (a, b, _) = inst.edges()[ei];
            v = if a == v { b } else { a };
        }
    }
    let edges: Vec<usize> = (0..inst.edges().len()).filter(|&i| in_join[i]).collect();
    let weight = edges.iter().map(|&i| inst.edges()[i].2).sum();
    Ok(TJoin { edges, weight })
}

fn dijkstra(inst: &TJoinInstance, source: usize) -> (Vec<Option<i64>>, Vec<Option<usize>>) {
    let n = inst.node_count();
    let mut dist: Vec<Option<i64>> = vec![None; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = Some(0);
    heap.push(Reverse((0i64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist[u] != Some(d) {
            continue;
        }
        for &ei in inst.incident(u) {
            let (a, b, w) = inst.edges()[ei];
            let v = if a == u { b } else { a };
            let nd = d + w;
            if dist[v].is_none_or(|dv| nd < dv) {
                dist[v] = Some(nd);
                parent[v] = Some(ei);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_path_edges_cancel() {
        // Star: center 0, leaves 1..=4, all leaves in T. Any pairing of
        // leaves routes through the center; shared spokes must not be
        // double-counted.
        let inst = TJoinInstance::new(
            5,
            vec![(0, 1, 1), (0, 2, 1), (0, 3, 1), (0, 4, 1)],
            vec![false, true, true, true, true],
        )
        .unwrap();
        let j = solve_shortest_path(&inst).unwrap();
        assert_eq!(j.weight, 4); // all four spokes
        assert!(inst.is_valid_join(&j));
    }

    #[test]
    fn center_in_t_with_three_leaves_is_infeasible() {
        let inst = TJoinInstance::new(
            4,
            vec![(0, 1, 1), (0, 2, 1), (0, 3, 1)],
            vec![true, true, true, false],
        )
        .unwrap();
        // Component T count = 3: infeasible.
        assert!(solve_shortest_path(&inst).is_err());
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let inst =
            TJoinInstance::new(3, vec![(0, 1, 0), (1, 2, 0)], vec![true, false, true]).unwrap();
        let j = solve_shortest_path(&inst).unwrap();
        assert_eq!(j.weight, 0);
        assert!(inst.is_valid_join(&j));
        assert_eq!(j.edges.len(), 2);
    }

    #[test]
    fn multiple_components_solved_independently() {
        let inst = TJoinInstance::new(4, vec![(0, 1, 5), (2, 3, 7)], vec![true, true, true, true])
            .unwrap();
        let j = solve_shortest_path(&inst).unwrap();
        assert_eq!(j.weight, 12);
    }
}
