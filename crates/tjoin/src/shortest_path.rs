//! The Edmonds–Johnson shortest-path reduction for minimum-weight T-joins.

use crate::{TJoin, TJoinError, TJoinInstance};
use aapsm_fault::{Budget, Stage};
use aapsm_matching::MatchingContext;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: i64 = i64::MAX / 4;
const NO_PARENT: usize = usize::MAX;

/// Solves a T-join via all-pairs shortest paths among T-nodes:
///
/// 1. run Dijkstra from every T-node,
/// 2. find a minimum-weight perfect matching on the complete graph over
///    the T-nodes with shortest-path distances as weights,
/// 3. take the symmetric difference of the matched shortest paths.
///
/// The symmetric difference step matters: matched paths may share edges,
/// and XOR-ing them preserves the degree parity while never increasing the
/// weight, so the result is an optimal T-join.
///
/// Uses the calling thread's shared [`MatchingContext`]; see
/// [`solve_shortest_path_with`] to control solver-arena reuse explicitly.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some component has an odd
/// number of T-nodes.
pub fn solve_shortest_path(inst: &TJoinInstance) -> Result<TJoin, TJoinError> {
    aapsm_matching::with_thread_context(|ctx| solve_shortest_path_with(inst, ctx))
}

/// [`solve_shortest_path`] against a caller-owned matching arena.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some component has an odd
/// number of T-nodes.
pub fn solve_shortest_path_with(
    inst: &TJoinInstance,
    ctx: &mut MatchingContext,
) -> Result<TJoin, TJoinError> {
    solve_shortest_path_budgeted(inst, ctx, &Budget::unlimited())
}

/// [`solve_shortest_path_with`] under a [`Budget`].
///
/// Every phase of the reduction charges [`aapsm_fault::Stage::Matching`]
/// work: the Dijkstra sweep charges one tick per heap pop, the T-pair
/// distance-graph build one tick per source row, and the Blossom matching
/// its usual one tick per dual adjustment — with a boundary
/// [`Budget::check`] between phases. A blown deadline or work cap
/// therefore trips inside whichever loop is running, never only after the
/// (potentially dominant) shortest-path work has already completed.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some component has an odd
/// number of T-nodes and [`TJoinError::Budget`] when the budget trips
/// in any phase.
pub fn solve_shortest_path_budgeted(
    inst: &TJoinInstance,
    ctx: &mut MatchingContext,
    budget: &Budget,
) -> Result<TJoin, TJoinError> {
    inst.check_feasible()?;
    let t_nodes: Vec<usize> = (0..inst.node_count())
        .filter(|&v| inst.t_set()[v])
        .collect();
    if t_nodes.is_empty() {
        return Ok(TJoin {
            edges: Vec::new(),
            weight: 0,
        });
    }

    // Dijkstra from each T-node, remembering the parent edge for path
    // recovery. A source only ever needs distances to the T-nodes of its
    // own component, so each run stops once those are all settled.
    budget.check(Stage::Matching)?;
    let comp = inst.components();
    let comp_count = comp.iter().copied().max().map_or(0, |c| c + 1);
    let mut t_per_comp = vec![0usize; comp_count];
    // lint: allow(L1) — O(|T|) single-increment fill, dominated by the charged Dijkstra phase below
    for &t in &t_nodes {
        t_per_comp[comp[t]] += 1;
    }
    let mut dijkstra = DijkstraScratch::new(inst.node_count());
    let mut dist_all = Vec::with_capacity(t_nodes.len());
    let mut parent_all = Vec::with_capacity(t_nodes.len());
    for &s in &t_nodes {
        let (dist, parent) = dijkstra.run_budgeted(inst, s, t_per_comp[comp[s]], budget)?;
        dist_all.push(dist);
        parent_all.push(parent);
    }

    // Complete graph over T-nodes (only pairs in the same component).
    budget.check(Stage::Matching)?;
    let mut matching_edges = Vec::new();
    for (i, dist_i) in dist_all.iter().enumerate() {
        budget.charge(Stage::Matching, 1)?;
        // lint: allow(L1) — one tick per source row charged by the enclosing loop; body is plain appends
        for j in (i + 1)..t_nodes.len() {
            let d = dist_i[t_nodes[j]];
            if d < INF {
                matching_edges.push((i, j, d));
            }
        }
    }
    budget.check(Stage::Matching)?;
    let Some(matching) =
        ctx.try_min_weight_perfect_matching(t_nodes.len(), &matching_edges, budget)?
    else {
        // `check_feasible` guarantees an even T count per component, which
        // makes the T-node distance graph perfectly matchable.
        debug_assert!(false, "even T per component yielded no perfect matching");
        return Err(TJoinError::Internal {
            context: "T-node distance graph of a feasible instance has no perfect matching",
        });
    };

    // XOR the matched shortest paths.
    let mut in_join = vec![false; inst.edges().len()];
    for (i, j) in matching.pairs() {
        let mut v = t_nodes[j];
        let target = t_nodes[i];
        while v != target {
            // Path recovery is O(|T|·V) worst case — real work that a
            // deadline must be able to interrupt: one tick per path edge.
            budget.charge(Stage::Matching, 1)?;
            // Invariant: the matching only pairs T-nodes with a finite
            // distance, so the Dijkstra parent chain reaches the target.
            let ei = parent_all[i][v];
            debug_assert_ne!(ei, NO_PARENT, "path exists to matched partner");
            in_join[ei] ^= true;
            let (a, b, _) = inst.edges()[ei];
            v = if a == v { b } else { a };
        }
    }
    let edges: Vec<usize> = (0..inst.edges().len()).filter(|&i| in_join[i]).collect();
    let weight = edges.iter().map(|&i| inst.edges()[i].2).sum();
    Ok(TJoin { edges, weight })
}

/// Reusable buffers for the per-source Dijkstra runs: the heap survives
/// across sources (capacity reuse), while the distance and parent arrays
/// are handed out per source for path recovery.
struct DijkstraScratch {
    n: usize,
    heap: BinaryHeap<Reverse<(i64, usize)>>,
}

impl DijkstraScratch {
    fn new(n: usize) -> DijkstraScratch {
        DijkstraScratch {
            n,
            heap: BinaryHeap::new(),
        }
    }

    /// One budgeted single-source run, stopping early once `t_in_comp`
    /// T-nodes (the source's whole component share) are settled. Charges
    /// one [`Stage::Matching`] tick per heap pop — the unit of work of
    /// the O(|T|·E log V) phase.
    fn run_budgeted(
        &mut self,
        inst: &TJoinInstance,
        source: usize,
        t_in_comp: usize,
        budget: &Budget,
    ) -> Result<(Vec<i64>, Vec<usize>), TJoinError> {
        let mut dist = vec![INF; self.n];
        let mut parent = vec![NO_PARENT; self.n];
        self.heap.clear();
        let mut t_settled = 0usize;
        dist[source] = 0;
        self.heap.push(Reverse((0i64, source)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            budget.charge(Stage::Matching, 1)?;
            if dist[u] != d {
                continue;
            }
            if inst.t_set()[u] {
                t_settled += 1;
                if t_settled == t_in_comp {
                    break;
                }
            }
            // lint: allow(L1) — one tick per heap pop charged above; the incident scan is that pop's unit of work
            for &ei in inst.incident(u) {
                let (a, b, w) = inst.edges()[ei];
                let v = if a == u { b } else { a };
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = ei;
                    self.heap.push(Reverse((nd, v)));
                }
            }
        }
        Ok((dist, parent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_fault::BudgetSpec;

    #[test]
    fn shared_path_edges_cancel() {
        // Star: center 0, leaves 1..=4, all leaves in T. Any pairing of
        // leaves routes through the center; shared spokes must not be
        // double-counted.
        let inst = TJoinInstance::new(
            5,
            vec![(0, 1, 1), (0, 2, 1), (0, 3, 1), (0, 4, 1)],
            vec![false, true, true, true, true],
        )
        .unwrap();
        let j = solve_shortest_path(&inst).unwrap();
        assert_eq!(j.weight, 4); // all four spokes
        assert!(inst.is_valid_join(&j));
    }

    #[test]
    fn center_in_t_with_three_leaves_is_infeasible() {
        let inst = TJoinInstance::new(
            4,
            vec![(0, 1, 1), (0, 2, 1), (0, 3, 1)],
            vec![true, true, true, false],
        )
        .unwrap();
        // Component T count = 3: infeasible.
        assert!(solve_shortest_path(&inst).is_err());
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let inst =
            TJoinInstance::new(3, vec![(0, 1, 0), (1, 2, 0)], vec![true, false, true]).unwrap();
        let j = solve_shortest_path(&inst).unwrap();
        assert_eq!(j.weight, 0);
        assert!(inst.is_valid_join(&j));
        assert_eq!(j.edges.len(), 2);
    }

    #[test]
    fn multiple_components_solved_independently() {
        let inst = TJoinInstance::new(4, vec![(0, 1, 5), (2, 3, 7)], vec![true, true, true, true])
            .unwrap();
        let j = solve_shortest_path(&inst).unwrap();
        assert_eq!(j.weight, 12);
    }

    /// A long path with T at both ends: the Dijkstra phase pops ~n heap
    /// entries while the 2-node matching needs only a handful of dual
    /// adjustments.
    fn long_path(n: usize) -> TJoinInstance {
        let edges: Vec<(usize, usize, i64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
        let mut t = vec![false; n];
        t[0] = true;
        t[n - 1] = true;
        TJoinInstance::new(n, edges, t).unwrap()
    }

    #[test]
    fn dijkstra_phase_is_charged_to_the_budget() {
        // Regression for the unbudgeted-Dijkstra bug: with a Matching
        // work cap far above what the tiny 2-node Blossom matching
        // charges but far below the number of heap pops, the solve must
        // trip *inside the shortest-path phase*. Before the fix the first
        // charge happened only inside the matching, so this budget never
        // tripped at all.
        let inst = long_path(4096);
        let budget = BudgetSpec {
            matching_ticks: Some(64),
            ..BudgetSpec::default()
        }
        .build();
        let mut ctx = MatchingContext::new();
        let got = solve_shortest_path_budgeted(&inst, &mut ctx, &budget);
        assert!(
            matches!(got, Err(TJoinError::Budget(_))),
            "cap of 64 ticks against ~4096 heap pops must trip, got {got:?}"
        );
        // The identical instance under an unlimited budget still solves
        // exactly (the charges are bookkeeping, not behavior).
        let j = solve_shortest_path_with(&inst, &mut ctx).unwrap();
        assert_eq!(j.weight, 4095);
    }

    /// Injected exhaustion from the N-th charge lands inside the Dijkstra
    /// loop (pop N) — only possible now that the loop charges at all.
    /// Before the fix the matching's few dual adjustments were the only
    /// charges, the plan's occurrence index was never reached, and the
    /// solve sailed through.
    #[cfg(debug_assertions)]
    #[test]
    fn injected_exhaustion_fires_inside_the_dijkstra_phase() {
        use aapsm_fault::{with_plan, ExhaustReason, FaultPlan};
        let inst = long_path(512);
        // Uncapped but *limited* budget: injection only applies to
        // budgets built from a spec, never to `Budget::unlimited`.
        let budget = BudgetSpec::default().build();
        let mut ctx = MatchingContext::new();
        let got = with_plan(
            FaultPlan {
                exhaust_at: Some((Stage::Matching, 100)),
                ..FaultPlan::default()
            },
            || solve_shortest_path_budgeted(&inst, &mut ctx, &budget),
        );
        match got {
            Err(TJoinError::Budget(e)) => {
                assert_eq!(e.stage, Stage::Matching);
                assert_eq!(e.reason, ExhaustReason::Injected);
            }
            other => panic!("expected an injected budget trip, got {other:?}"),
        }
        // No plan, same budget: the solve completes and is exact.
        let j = solve_shortest_path_budgeted(&inst, &mut ctx, &budget).unwrap();
        assert_eq!(j.weight, 511);
        assert!(inst.is_valid_join(&j));
    }

    #[test]
    fn early_exit_matches_full_sweep_across_components() {
        // Two components of very different sizes plus unreachable
        // filler: early exit must still produce the same pairing.
        let mut edges = vec![];
        for i in 0..40usize {
            edges.push((i, i + 1, 2));
        }
        edges.push((50, 51, 3));
        let mut t = vec![false; 60];
        t[0] = true;
        t[40] = true;
        t[50] = true;
        t[51] = true;
        let inst = TJoinInstance::new(60, edges, t).unwrap();
        let j = solve_shortest_path(&inst).unwrap();
        assert_eq!(j.weight, 80 + 3);
        assert!(inst.is_valid_join(&j));
    }
}
