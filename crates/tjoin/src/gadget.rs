//! Gadget reductions from minimum-weight T-join to perfect matching.
//!
//! # The construction
//!
//! Every edge of the T-join instance is *assigned* to one of its endpoints
//! such that each node's assigned-edge count has the parity of its T-set
//! membership (a spanning-forest fix-up makes this possible; when a
//! component's parity budget cannot be met by single assignments, an extra
//! zero-cost *parity node* is added to one gadget — this plays the role of
//! the paper's "edge assigned to both endpoints at the same time").
//!
//! Each node `v` becomes a *gadget*: one member per incident edge — a
//! **true node** (cost 0) when the edge is assigned to `v`, a **ghost
//! node** (cost `w(e)`) otherwise. Members of one gadget are pairwise
//! connected with edge cost `c(x) + c(y)`; a true/ghost pair of one
//! instance edge is linked through a zero-cost **dummy** path. A perfect
//! matching must match each member either "inward" (into its gadget) or
//! "outward" (through the dummy), and the inward ghost matches pay exactly
//! the weight of the selected T-join.
//!
//! # Decomposed gadgets
//!
//! A complete gadget on `d` members has `O(d²)` edges. Following the
//! paper, a gadget may be decomposed into complete groups `B₁ … B_k`
//! joined by *divide junctions*. The paper skips the construction details;
//! we use, per junction, a linked pair of zero-cost nodes `(P, Q)` where
//! `P` is fully connected to the left group, `Q` to the right group,
//! consecutive junctions are chained (`Qᵢ—Pᵢ₊₁`), and `P—Q` lets an unused
//! junction self-match. A junction chain can bridge one odd residue pair
//! between any two groups, and disjoint residue pairs use disjoint chain
//! segments, so every even member subset remains realizable at exactly its
//! additive cost (property-tested against the complete gadget and brute
//! force). [`GadgetKind::Optimized`] (groups ≤ 3) corresponds to the
//! optimized gadgets of Kahng et al. [5]; [`GadgetKind::Generalized`]
//! allows any group size — fewer junction nodes, smaller matchings, which
//! is the source of the paper's reported ~16% matching-runtime gain.
//!
//! # Merged representation
//!
//! The paper notes "ghost nodes and dummy nodes are not represented" in
//! the actual implementation: a ghost is a pointer to the true node at the
//! other endpoint. We implement this as the default: the true node itself
//! appears as the remote gadget's member (with cost `w(e)`), eliminating
//! two matching nodes per edge. Parallel edges would make the extraction
//! ambiguous, so members of parallel bundles keep the explicit
//! ghost+dummy form.

use crate::{TJoin, TJoinError, TJoinInstance};
use aapsm_fault::{Budget, Stage};
use aapsm_matching::MatchingContext;

/// Gadget decomposition policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GadgetKind {
    /// One complete gadget per node (no junctions).
    Complete,
    /// Complete subgraphs of size ≤ 3 (the optimized gadgets of [5]).
    Optimized,
    /// Complete subgraphs of size ≤ `max_group` (the paper's generalized
    /// gadgets).
    Generalized {
        /// Maximum members per complete group (≥ 1).
        max_group: usize,
    },
}

impl Default for GadgetKind {
    fn default() -> Self {
        GadgetKind::Generalized { max_group: 8 }
    }
}

impl GadgetKind {
    fn max_group(self) -> usize {
        match self {
            GadgetKind::Complete => usize::MAX,
            GadgetKind::Optimized => 3,
            GadgetKind::Generalized { max_group } => max_group.max(1),
        }
    }
}

/// Size statistics of a gadget matching instance, for the Figure 3/4
/// reproduction benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GadgetStats {
    /// Nodes of the matching graph.
    pub matching_nodes: usize,
    /// Edges of the matching graph (before parallel deduplication).
    pub matching_edges: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodeMeta {
    /// True node of an instance edge.
    True(usize),
    /// Explicit ghost node of an instance edge.
    Ghost(usize),
    /// Dummy node linking true and ghost of an instance edge.
    Dummy(usize),
    /// Extra parity node living in the gadget of an instance node.
    Extra(usize),
    /// Divide junction node of a gadget ("side" 0 = P, 1 = Q).
    Divide(usize),
}

/// Solves the T-join by the gadget reduction; also returns the matching
/// instance size (for the size/runtime benches).
///
/// Uses the calling thread's shared [`MatchingContext`]; see
/// [`solve_gadget_with`] to control solver-arena reuse explicitly.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some component has an odd
/// number of T-nodes.
pub fn solve_gadget(
    inst: &TJoinInstance,
    kind: GadgetKind,
) -> Result<(TJoin, GadgetStats), TJoinError> {
    aapsm_matching::with_thread_context(|ctx| solve_gadget_with(inst, kind, ctx))
}

/// [`solve_gadget`] against a caller-owned matching arena.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some component has an odd
/// number of T-nodes.
pub fn solve_gadget_with(
    inst: &TJoinInstance,
    kind: GadgetKind,
    ctx: &mut MatchingContext,
) -> Result<(TJoin, GadgetStats), TJoinError> {
    solve_gadget_budgeted(inst, kind, ctx, &Budget::unlimited())
}

/// [`solve_gadget_with`] under a [`Budget`]: the Blossom matching charges
/// [`aapsm_fault::Stage::Matching`] ticks and aborts early when it trips.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some component has an odd
/// number of T-nodes and [`TJoinError::Budget`] when the budget trips
/// inside the matching.
pub fn solve_gadget_budgeted(
    inst: &TJoinInstance,
    kind: GadgetKind,
    ctx: &mut MatchingContext,
    budget: &Budget,
) -> Result<(TJoin, GadgetStats), TJoinError> {
    inst.check_feasible()?;
    let n = inst.node_count();
    let edges = inst.edges();
    let m = edges.len();

    // ---- 1. Edge assignment with spanning-forest parity fix-up. ----
    let mut assigned_to: Vec<usize> = edges.iter().map(|&(u, v, _)| u.min(v)).collect();
    let mut defect = vec![false; n];
    for (v, d) in defect.iter_mut().enumerate() {
        budget.charge(Stage::Matching, 1)?;
        let a = inst
            .incident(v)
            .iter()
            .filter(|&&e| assigned_to[e] == v)
            .count();
        *d = (a % 2 == 1) != inst.t_set()[v];
    }
    // BFS forest.
    let mut parent_edge: Vec<Option<usize>> = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for s in 0..n {
        if visited[s] {
            continue;
        }
        visited[s] = true;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &ei in inst.incident(u) {
                budget.charge(Stage::Matching, 1)?;
                let (a, b, _) = edges[ei];
                let w = if a == u { b } else { a };
                if !visited[w] {
                    visited[w] = true;
                    parent_edge[w] = Some(ei);
                    queue.push_back(w);
                }
            }
        }
    }
    let mut extra_at: Vec<bool> = vec![false; n];
    for &v in order.iter().rev() {
        budget.charge(Stage::Matching, 1)?;
        if !defect[v] {
            continue;
        }
        match parent_edge[v] {
            Some(ei) => {
                // Flip the tree edge's assignment: toggles the parity (and
                // hence the defect) of both endpoints.
                let (a, b, _) = edges[ei];
                let other = if assigned_to[ei] == a { b } else { a };
                assigned_to[ei] = other;
                defect[a] = !defect[a];
                defect[b] = !defect[b];
            }
            None => {
                // Component root: absorb the leftover parity with an extra
                // zero-cost member in v's gadget.
                extra_at[v] = true;
                defect[v] = false;
            }
        }
    }
    debug_assert!(defect.iter().all(|&d| !d));

    // ---- 2. Build the matching graph. ----
    // Parallel bundles must use the explicit ghost representation.
    let mut bundle: std::collections::HashMap<(usize, usize), usize> =
        std::collections::HashMap::new();
    for &(u, v, _) in edges {
        budget.charge(Stage::Matching, 1)?;
        *bundle.entry((u.min(v), u.max(v))).or_default() += 1;
    }
    let explicit: Vec<bool> = edges
        .iter()
        .map(|&(u, v, _)| bundle[&(u.min(v), u.max(v))] > 1)
        .collect();

    let mut meta: Vec<NodeMeta> = Vec::new();
    let new_node = |m: NodeMeta, meta: &mut Vec<NodeMeta>| -> usize {
        meta.push(m);
        meta.len() - 1
    };
    let mut true_node = vec![usize::MAX; m];
    let mut ghost_node = vec![usize::MAX; m];
    let mut dummy_node = vec![usize::MAX; m];
    for e in 0..m {
        budget.charge(Stage::Matching, 1)?;
        true_node[e] = new_node(NodeMeta::True(e), &mut meta);
        if explicit[e] {
            ghost_node[e] = new_node(NodeMeta::Ghost(e), &mut meta);
            dummy_node[e] = new_node(NodeMeta::Dummy(e), &mut meta);
        }
    }
    let mut extra_node = vec![usize::MAX; n];
    for v in 0..n {
        budget.charge(Stage::Matching, 1)?;
        if extra_at[v] {
            extra_node[v] = new_node(NodeMeta::Extra(v), &mut meta);
        }
    }

    let mut medges: Vec<(usize, usize, i64)> = Vec::new();
    // Dummy paths for explicit edges.
    for e in 0..m {
        budget.charge(Stage::Matching, 1)?;
        if explicit[e] {
            medges.push((true_node[e], dummy_node[e], 0));
            medges.push((dummy_node[e], ghost_node[e], 0));
        }
    }
    // Per-node gadgets.
    let max_group = kind.max_group();
    for v in 0..n {
        // Members: (matching node, cost in this gadget's context).
        let mut members: Vec<(usize, i64)> = Vec::new();
        for &ei in inst.incident(v) {
            budget.charge(Stage::Matching, 1)?;
            let (_, _, w) = edges[ei];
            if assigned_to[ei] == v {
                members.push((true_node[ei], 0));
            } else if explicit[ei] {
                members.push((ghost_node[ei], w));
            } else {
                members.push((true_node[ei], w)); // merged ghost
            }
        }
        if extra_at[v] {
            members.push((extra_node[v], 0));
        }
        if members.is_empty() {
            continue;
        }
        let groups: Vec<&[(usize, i64)]> = members.chunks(max_group.min(members.len())).collect();
        // Intra-group cliques.
        for group in &groups {
            for (i, &(x, cx)) in group.iter().enumerate() {
                for &(y, cy) in &group[i + 1..] {
                    budget.charge(Stage::Matching, 1)?;
                    medges.push((x, y, cx + cy));
                }
            }
        }
        // Divide junctions between consecutive groups.
        let mut prev_q: Option<usize> = None;
        for j in 0..groups.len().saturating_sub(1) {
            let p = new_node(NodeMeta::Divide(v), &mut meta);
            let q = new_node(NodeMeta::Divide(v), &mut meta);
            medges.push((p, q, 0));
            for &(x, cx) in groups[j] {
                budget.charge(Stage::Matching, 1)?;
                medges.push((p, x, cx));
            }
            for &(y, cy) in groups[j + 1] {
                budget.charge(Stage::Matching, 1)?;
                medges.push((q, y, cy));
            }
            if let Some(pq) = prev_q {
                medges.push((pq, p, 0));
            }
            prev_q = Some(q);
        }
    }

    let stats = GadgetStats {
        matching_nodes: meta.len(),
        matching_edges: medges.len(),
    };

    // ---- 3. Perfect matching. ----
    let Some(matching) = ctx.try_min_weight_perfect_matching(meta.len(), &medges, budget)? else {
        // A feasible T-join instance always yields a perfectly matchable
        // gadget graph; reaching this arm means the construction is buggy.
        debug_assert!(
            false,
            "feasible T-join instance produced an unmatchable gadget graph"
        );
        return Err(TJoinError::Internal {
            context: "gadget graph of a feasible instance has no perfect matching",
        });
    };

    // ---- 4. Extraction. ----
    let home = |e: usize| assigned_to[e];
    let remote = |e: usize| {
        let (u, v, _) = edges[e];
        if assigned_to[e] == u {
            v
        } else {
            u
        }
    };
    let mut in_join = vec![false; m];
    for e in 0..m {
        budget.charge(Stage::Matching, 1)?;
        if explicit[e] {
            // Ghost matched inward (anything but its dummy) means e is in
            // the join.
            in_join[e] = matching.mate[ghost_node[e]] != Some(dummy_node[e]);
        } else {
            // Invariant: `try_min_weight_perfect_matching` only returns
            // perfect matchings, so every node has a mate.
            #[allow(clippy::expect_used)]
            let partner = matching.mate[true_node[e]].expect("perfect matching");
            let context = match meta[partner] {
                NodeMeta::Dummy(e2) => {
                    debug_assert_eq!(e2, e);
                    home(e) // matched outward through its own dummy: not in join
                }
                NodeMeta::Extra(v) | NodeMeta::Divide(v) => v,
                NodeMeta::Ghost(e2) => remote(e2),
                NodeMeta::True(e2) => {
                    // Shared gadget: the unique common endpoint.
                    let (u1, v1, _) = edges[e];
                    let (u2, v2, _) = edges[e2];
                    if u1 == u2 || u1 == v2 {
                        u1
                    } else {
                        debug_assert!(v1 == u2 || v1 == v2, "edges must share an endpoint");
                        v1
                    }
                }
            };
            in_join[e] = context == remote(e);
        }
    }
    let join_edges: Vec<usize> = (0..m).filter(|&e| in_join[e]).collect();
    let weight = join_edges.iter().map(|&e| edges[e].2).sum();
    let join = TJoin {
        edges: join_edges,
        weight,
    };
    debug_assert!(
        inst.is_valid_join(&join),
        "gadget extraction produced an invalid T-join"
    );
    Ok((join, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::solve_brute;
    use rand::{Rng, SeedableRng};

    fn kinds() -> Vec<GadgetKind> {
        vec![
            GadgetKind::Complete,
            GadgetKind::Optimized,
            GadgetKind::Generalized { max_group: 1 },
            GadgetKind::Generalized { max_group: 2 },
            GadgetKind::Generalized { max_group: 5 },
        ]
    }

    #[test]
    fn single_edge_join() {
        let inst = TJoinInstance::new(2, vec![(0, 1, 3)], vec![true, true]).unwrap();
        for k in kinds() {
            let (j, _) = solve_gadget(&inst, k).unwrap();
            assert_eq!(j.weight, 3, "{k:?}");
            assert_eq!(j.edges, vec![0]);
        }
    }

    #[test]
    fn high_degree_node_exercises_junctions() {
        // Star with 7 leaves, all in T along with sometimes the center.
        for center_in_t in [false, true] {
            let leaves = if center_in_t { 7 } else { 6 };
            let mut edges = Vec::new();
            let mut t = vec![center_in_t];
            for l in 0..leaves {
                edges.push((0, l + 1, (l as i64) + 1));
                t.push(true);
            }
            if (t.iter().filter(|&&b| b).count()) % 2 == 1 {
                t[1] = false;
            }
            let inst = TJoinInstance::new(leaves + 1, edges, t).unwrap();
            let reference = solve_brute(&inst);
            for k in kinds() {
                let got = solve_gadget(&inst, k).map(|(j, _)| j);
                assert_eq!(
                    reference.as_ref().map(|j| j.weight),
                    got.as_ref().ok().map(|j| j.weight),
                    "{k:?} center_in_t={center_in_t}"
                );
            }
        }
    }

    #[test]
    fn decomposition_shrinks_edge_count_for_high_degree() {
        // One node of degree 12: complete gadget needs 66 intra edges;
        // grouped gadgets need far fewer.
        let mut edges = Vec::new();
        let mut t = vec![false];
        for l in 0..12 {
            edges.push((0, l + 1, 1));
            t.push(l % 2 == 0);
        }
        // Make |T| even.
        let t_count = t.iter().filter(|&&b| b).count();
        if t_count % 2 == 1 {
            t[1] = !t[1];
        }
        let inst = TJoinInstance::new(13, edges, t).unwrap();
        let (_, complete) = solve_gadget(&inst, GadgetKind::Complete).unwrap();
        let (_, grouped) = solve_gadget(&inst, GadgetKind::Generalized { max_group: 4 }).unwrap();
        assert!(
            grouped.matching_edges < complete.matching_edges,
            "grouped {grouped:?} vs complete {complete:?}"
        );
        // Generalized (bigger groups) uses fewer nodes than optimized.
        let (_, opt) = solve_gadget(&inst, GadgetKind::Optimized).unwrap();
        let (_, gen8) = solve_gadget(&inst, GadgetKind::Generalized { max_group: 8 }).unwrap();
        assert!(gen8.matching_nodes < opt.matching_nodes);
    }

    #[test]
    fn cross_group_residues_bridge_through_junctions() {
        // Regression for the junction-chain construction: a degree-6 hub
        // where the optimal join must activate exactly one member in each
        // of two different groups.
        let edges = vec![
            (0, 1, 1),
            (0, 2, 100),
            (0, 3, 100),
            (0, 4, 100),
            (0, 5, 100),
            (0, 6, 1),
        ];
        let t = vec![false, true, false, false, false, false, true];
        let inst = TJoinInstance::new(7, edges, t).unwrap();
        let reference = solve_brute(&inst).unwrap();
        assert_eq!(reference.weight, 2); // edges (0,1) and (0,6)
        for k in kinds() {
            let (j, _) = solve_gadget(&inst, k).unwrap();
            assert_eq!(j.weight, reference.weight, "{k:?}");
            assert!(inst.is_valid_join(&j), "{k:?}");
        }
    }

    #[test]
    fn random_cross_validation_against_brute_force() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(555);
        for trial in 0..150 {
            let n = rng.gen_range(2..7);
            let mut edges = Vec::new();
            for _ in 0..rng.gen_range(1..10) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    edges.push((u, v, rng.gen_range(0..50) as i64));
                }
            }
            if edges.is_empty() {
                continue;
            }
            let t: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let inst = TJoinInstance::new(n, edges.clone(), t.clone()).unwrap();
            let reference = solve_brute(&inst);
            for k in kinds() {
                let got = solve_gadget(&inst, k).map(|(j, _)| j);
                match (&reference, got) {
                    (None, Err(_)) => {}
                    (Some(b), Ok(j)) => {
                        assert!(inst.is_valid_join(&j), "trial {trial} {k:?}");
                        assert_eq!(
                            j.weight, b.weight,
                            "trial {trial} {k:?} edges={edges:?} t={t:?}"
                        );
                    }
                    (b, g) => panic!(
                        "trial {trial} {k:?}: feasibility disagrees brute={} got={}",
                        b.is_some(),
                        g.is_ok()
                    ),
                }
            }
        }
    }

    #[test]
    fn stats_reflect_merged_representation() {
        // Simple path: no parallel edges, so no ghost/dummy nodes should
        // be materialized — 2 true nodes only (plus junctions/extras).
        let inst =
            TJoinInstance::new(3, vec![(0, 1, 1), (1, 2, 1)], vec![true, false, true]).unwrap();
        let (_, stats) = solve_gadget(&inst, GadgetKind::Complete).unwrap();
        assert_eq!(stats.matching_nodes, 2);
    }

    #[test]
    fn parallel_bundles_use_explicit_nodes() {
        let inst = TJoinInstance::new(2, vec![(0, 1, 5), (0, 1, 2)], vec![false, false]).unwrap();
        let (j, stats) = solve_gadget(&inst, GadgetKind::Complete).unwrap();
        assert_eq!(j.weight, 0);
        // 2 edges x (true + ghost + dummy) = 6 nodes.
        assert_eq!(stats.matching_nodes, 6);
    }
}
