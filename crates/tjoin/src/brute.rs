//! Brute-force T-join reference solver (subset enumeration).

use crate::{TJoin, TJoinInstance};

/// Finds the minimum-weight T-join by enumerating all edge subsets.
///
/// Returns `None` when no T-join exists. Intended for test oracles only.
///
/// # Panics
///
/// Panics if the instance has more than 20 edges.
pub fn solve_brute(inst: &TJoinInstance) -> Option<TJoin> {
    let m = inst.edges().len();
    assert!(m <= 20, "brute-force T-join limited to 20 edges");
    let n = inst.node_count();
    let mut best: Option<(i64, u32)> = None;
    'subsets: for mask in 0u32..(1 << m) {
        let mut parity = vec![0u8; n];
        let mut weight = 0i64;
        for (i, &(u, v, w)) in inst.edges().iter().enumerate() {
            if mask & (1 << i) != 0 {
                parity[u] ^= 1;
                parity[v] ^= 1;
                weight += w;
                if best.is_some_and(|(bw, _)| weight > bw) {
                    continue 'subsets;
                }
            }
        }
        for (v, &p) in parity.iter().enumerate() {
            if (p == 1) != inst.t_set()[v] {
                continue 'subsets;
            }
        }
        if best.is_none_or(|(bw, _)| weight < bw) {
            best = Some((weight, mask));
        }
    }
    best.map(|(weight, mask)| TJoin {
        edges: (0..m).filter(|i| mask & (1 << i) != 0).collect(),
        weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_join() {
        let inst =
            TJoinInstance::new(3, vec![(0, 1, 4), (1, 2, 5)], vec![true, false, true]).unwrap();
        let j = solve_brute(&inst).unwrap();
        assert_eq!(j.weight, 9);
        assert_eq!(j.edges, vec![0, 1]);
    }

    #[test]
    fn infeasible_returns_none() {
        let inst = TJoinInstance::new(2, vec![(0, 1, 1)], vec![true, false]).unwrap();
        assert!(solve_brute(&inst).is_none());
    }

    #[test]
    fn empty_t_gives_empty_join() {
        let inst = TJoinInstance::new(2, vec![(0, 1, 1)], vec![false, false]).unwrap();
        let j = solve_brute(&inst).unwrap();
        assert_eq!(j.weight, 0);
        assert!(j.edges.is_empty());
    }
}
