//! Minimum-weight T-join solvers.
//!
//! Given a graph `G = (V, E, w)` with non-negative weights and a node set
//! `T ⊆ V`, a *T-join* is an edge set `A` such that a node is incident to an
//! odd number of edges of `A` exactly when it belongs to `T`. The optimal
//! bipartization of a planar phase conflict graph is a minimum-weight T-join
//! on its geometric dual with `T` = odd faces (Hadlock's construction, used
//! by Kahng et al. and by the DATE 2005 bright-field AAPSM paper this
//! workspace reproduces).
//!
//! Solvers (all exact, all reducing to minimum-weight perfect matching):
//!
//! * [`GadgetKind::Complete`] — one complete gadget per node (the textbook
//!   direct reduction),
//! * [`GadgetKind::Optimized`] — gadgets decomposed into complete subgraphs
//!   of size ≤ 3 chained by divide junctions (the reduction of Kahng et
//!   al., TCAD'99),
//! * [`GadgetKind::Generalized`] — complete subgraphs of *any* size (the
//!   DATE 2005 paper's new reduction; larger groups mean fewer junction
//!   nodes and faster matching),
//! * [`TJoinMethod::ShortestPath`] — the Edmonds–Johnson reduction:
//!   all-pairs shortest paths among T-nodes, matching on the complete
//!   T-graph, symmetric difference of the matched paths.
//!
//! # Auto-selection
//!
//! [`TJoinMethod::Auto`] (the default) picks per instance between the two
//! reductions by comparing the matching instances they produce. The gadget
//! reduction hands Blossom a graph with Θ(E) nodes regardless of |T|; the
//! metric closure hands it K_|T| after an O(|T|·E log V) Dijkstra sweep.
//! Since the dense Blossom solver is cubic in its node count, the closure
//! wins whenever the T-set is sparse relative to the edge set — which for
//! conflict-graph duals (few odd faces among many) is nearly always. The
//! heuristic in [`select_method`] is deliberately simple and purely a
//! function of instance shape: `ShortestPath` iff
//! `|T|² ≤ CLOSURE_DENSITY_FACTOR · |E|`, else `Gadget` — dense-T
//! instances (most faces odd, e.g. fully triangulated regions) keep the
//! gadget path where the closure's K_|T| would approach the gadget's size
//! while paying the Dijkstra sweep on top.
//!
//! # Caching and method provenance
//!
//! Callers that memoize joins by canonical instance bytes (the core
//! crate's `SolveCache`) must record *which concrete method* produced each
//! entry: `Auto` resolves deterministically per instance via
//! [`resolve_method`], so a cache keyed on instance bytes alone stays
//! correct under `Auto`, but mixing configured methods across sessions
//! sharing one cache would otherwise silently serve a join computed under
//! a different policy. Store the resolved method alongside the entry and
//! treat a mismatch as a miss.
//!
//! The gadget solvers support two representations: the *explicit* one
//! materializes a true node, a ghost node and a dummy node per edge
//! (straightforwardly correct), while the *merged* one collapses ghost and
//! dummy into the remote true node ("ghost nodes are not represented", as
//! the paper puts it), shrinking the matching instance by ~2 nodes per
//! edge. Parallel edges fall back to the explicit form to keep extraction
//! unambiguous. All solvers are cross-validated against each other and
//! against brute force in the test suite.
//!
//! # Example
//!
//! ```
//! use aapsm_tjoin::{solve, TJoinInstance, TJoinMethod};
//!
//! // A path 0-1-2 with T = {0, 2}: the T-join is the whole path.
//! let inst = TJoinInstance::new(3, vec![(0, 1, 4), (1, 2, 5)], vec![true, false, true])?;
//! let join = solve(&inst, TJoinMethod::default())?;
//! assert_eq!(join.weight, 9);
//! # Ok::<(), aapsm_tjoin::TJoinError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod brute;
mod gadget;
mod instance;
mod shortest_path;

pub use gadget::{solve_gadget, solve_gadget_budgeted, solve_gadget_with, GadgetKind, GadgetStats};
pub use instance::{TJoin, TJoinError, TJoinInstance};
pub use shortest_path::{
    solve_shortest_path, solve_shortest_path_budgeted, solve_shortest_path_with,
};

pub use aapsm_fault::{Budget, BudgetExceeded};
pub use aapsm_matching::MatchingContext;

/// Which reduction to use for solving a T-join instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TJoinMethod {
    /// Gadget reduction to perfect matching.
    Gadget(GadgetKind),
    /// Edmonds–Johnson shortest-path reduction.
    ShortestPath,
    /// Per-instance selection between [`TJoinMethod::ShortestPath`] and
    /// the default gadget by instance shape (see [`select_method`]).
    Auto,
}

impl Default for TJoinMethod {
    /// Auto-selection: metric closure for sparse T-sets (the common
    /// conflict-dual shape), the paper's generalized gadgets otherwise.
    fn default() -> Self {
        TJoinMethod::Auto
    }
}

/// [`TJoinMethod::Auto`] picks the shortest-path reduction iff
/// `|T|² ≤ CLOSURE_DENSITY_FACTOR · |E|`. At that boundary the closure's
/// K_|T| matching instance (|T| nodes, dense) is still decisively smaller
/// than the gadget's Θ(E)-node instance for the cubic Blossom solver,
/// while beyond it the O(|T|·E log V) Dijkstra sweep stops paying for
/// itself on dense-T instances.
pub const CLOSURE_DENSITY_FACTOR: usize = 4;

/// The concrete method [`TJoinMethod::Auto`] picks for `inst`: a pure,
/// deterministic function of the instance shape (|T| and |E| only), so
/// caching layers keyed on canonical instance bytes resolve identically on
/// every lookup.
///
/// Never returns [`TJoinMethod::Auto`].
pub fn select_method(inst: &TJoinInstance) -> TJoinMethod {
    let t = inst.t_set().iter().filter(|&&b| b).count();
    let m = inst.edges().len();
    if t.saturating_mul(t) <= CLOSURE_DENSITY_FACTOR.saturating_mul(m) {
        TJoinMethod::ShortestPath
    } else {
        TJoinMethod::Gadget(GadgetKind::default())
    }
}

/// Resolves `method` to the concrete reduction used for `inst`:
/// [`TJoinMethod::Auto`] defers to [`select_method`], anything else is
/// returned unchanged. Cache layers recording method provenance call this
/// so an entry's tag never says `Auto`.
pub fn resolve_method(method: TJoinMethod, inst: &TJoinInstance) -> TJoinMethod {
    match method {
        TJoinMethod::Auto => select_method(inst),
        concrete => concrete,
    }
}

/// Solves a minimum-weight T-join instance with the chosen method.
///
/// All methods bottom out in Blossom perfect matching; this entry point
/// uses the calling thread's shared [`MatchingContext`]. Use [`solve_with`]
/// to reuse a caller-owned solver arena across many instances (the
/// parallel bipartization workers do).
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some connected component
/// contains an odd number of T-nodes.
pub fn solve(inst: &TJoinInstance, method: TJoinMethod) -> Result<TJoin, TJoinError> {
    aapsm_matching::with_thread_context(|ctx| solve_with(inst, method, ctx))
}

/// [`solve`] against a caller-owned matching arena.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some connected component
/// contains an odd number of T-nodes.
pub fn solve_with(
    inst: &TJoinInstance,
    method: TJoinMethod,
    ctx: &mut MatchingContext,
) -> Result<TJoin, TJoinError> {
    solve_budgeted(inst, method, ctx, &Budget::unlimited())
}

/// [`solve_with`] under a [`Budget`]: the Blossom dual-adjustment loop
/// charges [`aapsm_fault::Stage::Matching`] ticks and aborts early when the
/// budget trips.
///
/// # Errors
///
/// Returns [`TJoinError::Infeasible`] when some connected component
/// contains an odd number of T-nodes, and [`TJoinError::Budget`] when the
/// deadline, matching work cap, or cancellation token trips mid-solve.
pub fn solve_budgeted(
    inst: &TJoinInstance,
    method: TJoinMethod,
    ctx: &mut MatchingContext,
    budget: &Budget,
) -> Result<TJoin, TJoinError> {
    match method {
        TJoinMethod::Gadget(kind) => {
            solve_gadget_budgeted(inst, kind, ctx, budget).map(|(join, _)| join)
        }
        TJoinMethod::ShortestPath => solve_shortest_path_budgeted(inst, ctx, budget),
        TJoinMethod::Auto => solve_budgeted(inst, select_method(inst), ctx, budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn all_methods() -> Vec<TJoinMethod> {
        vec![
            TJoinMethod::Gadget(GadgetKind::Complete),
            TJoinMethod::Gadget(GadgetKind::Optimized),
            TJoinMethod::Gadget(GadgetKind::Generalized { max_group: 4 }),
            TJoinMethod::Gadget(GadgetKind::Generalized { max_group: 8 }),
            TJoinMethod::ShortestPath,
            TJoinMethod::Auto,
        ]
    }

    #[test]
    fn auto_selection_is_shape_driven_and_concrete() {
        // Sparse T: 2 T-nodes on a 4-edge path → closure.
        let sparse = TJoinInstance::new(
            5,
            vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)],
            vec![true, false, false, false, true],
        )
        .unwrap();
        assert_eq!(select_method(&sparse), TJoinMethod::ShortestPath);

        // Dense T: two disjoint triangles with all 6 nodes in T —
        // |T|² = 36 > 4·|E| = 24 → gadget.
        let dense = TJoinInstance::new(
            6,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
            vec![true; 6],
        )
        .unwrap();
        assert_eq!(
            select_method(&dense),
            TJoinMethod::Gadget(GadgetKind::default())
        );

        // resolve_method is the identity on concrete methods and never
        // returns Auto.
        for m in all_methods() {
            let r = resolve_method(m, &sparse);
            assert_ne!(r, TJoinMethod::Auto);
            if m != TJoinMethod::Auto {
                assert_eq!(r, m);
            }
        }
    }

    #[test]
    fn empty_t_means_empty_join() {
        let inst =
            TJoinInstance::new(3, vec![(0, 1, 2), (1, 2, 3)], vec![false, false, false]).unwrap();
        for m in all_methods() {
            let j = solve(&inst, m).unwrap();
            assert_eq!(j.weight, 0, "{m:?}");
            assert!(j.edges.is_empty());
        }
    }

    #[test]
    fn two_t_nodes_take_shortest_path() {
        // Square with unequal sides; T at opposite corners.
        let inst = TJoinInstance::new(
            4,
            vec![(0, 1, 1), (1, 2, 1), (2, 3, 10), (3, 0, 10)],
            vec![true, false, true, false],
        )
        .unwrap();
        for m in all_methods() {
            let j = solve(&inst, m).unwrap();
            assert_eq!(j.weight, 2, "{m:?}");
            assert!(inst.is_valid_join(&j));
        }
    }

    #[test]
    fn infeasible_odd_t_in_component() {
        let inst = TJoinInstance::new(3, vec![(0, 1, 1)], vec![true, false, true]).unwrap();
        for m in all_methods() {
            assert!(
                matches!(solve(&inst, m), Err(TJoinError::Infeasible { .. })),
                "{m:?}"
            );
        }
    }

    #[test]
    fn parallel_edges_supported() {
        // Two parallel edges; T = both endpoints: take the cheaper one.
        let inst = TJoinInstance::new(2, vec![(0, 1, 7), (0, 1, 3)], vec![true, true]).unwrap();
        for m in all_methods() {
            let j = solve(&inst, m).unwrap();
            assert_eq!(j.weight, 3, "{m:?}");
            assert!(inst.is_valid_join(&j), "{m:?}");
        }
    }

    #[test]
    fn four_t_nodes_prefer_disjoint_pairs() {
        // Path 0-1-2-3 with all four nodes in T: join = {(0,1), (2,3)}.
        let inst = TJoinInstance::new(
            4,
            vec![(0, 1, 2), (1, 2, 100), (2, 3, 2)],
            vec![true, true, true, true],
        )
        .unwrap();
        for m in all_methods() {
            let j = solve(&inst, m).unwrap();
            assert_eq!(j.weight, 4, "{m:?}");
        }
    }

    #[test]
    fn all_methods_agree_with_brute_force_on_random_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let methods = all_methods();
        for trial in 0..120 {
            let n = rng.gen_range(2..8);
            let m_edges = rng.gen_range(1..12.min(3 * n));
            let mut edges = Vec::new();
            for _ in 0..m_edges {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    edges.push((u, v, rng.gen_range(0..30) as i64));
                }
            }
            if edges.is_empty() {
                continue;
            }
            let t: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
            let inst = TJoinInstance::new(n, edges.clone(), t.clone()).unwrap();
            let reference = brute::solve_brute(&inst);
            for &m in &methods {
                let got = solve(&inst, m);
                match (&reference, got) {
                    (None, Err(TJoinError::Infeasible { .. })) => {}
                    (Some(b), Ok(j)) => {
                        assert!(
                            inst.is_valid_join(&j),
                            "trial {trial} {m:?}: invalid join for edges={edges:?} t={t:?}"
                        );
                        assert_eq!(
                            j.weight, b.weight,
                            "trial {trial} {m:?}: edges={edges:?} t={t:?}"
                        );
                    }
                    (b, g) => panic!(
                        "trial {trial} {m:?}: feasibility disagrees brute={} got_ok={} edges={edges:?} t={t:?}",
                        b.is_some(),
                        g.is_ok()
                    ),
                }
            }
        }
    }

    #[test]
    fn methods_agree_on_larger_instances() {
        // Beyond brute-force reach: cross-validate methods against each
        // other.
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for trial in 0..20 {
            let n = rng.gen_range(10..30);
            let mut edges = Vec::new();
            for _ in 0..rng.gen_range(n..4 * n) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    edges.push((u, v, rng.gen_range(0..100) as i64));
                }
            }
            let t: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            let inst = TJoinInstance::new(n, edges, t).unwrap();
            let results: Vec<_> = all_methods()
                .into_iter()
                .map(|m| solve(&inst, m).map(|j| j.weight))
                .collect();
            for w in &results[1..] {
                assert_eq!(
                    results[0].as_ref().ok(),
                    w.as_ref().ok(),
                    "trial {trial}: {results:?}"
                );
            }
        }
    }
}
