//! Property-based tests of the exact geometry predicates.

use aapsm_geom::{Interval, Point, Rect, Segment};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (-2000i64..2000, -2000i64..2000).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (point(), 1i64..800, 1i64..800).prop_map(|(p, w, h)| Rect::new(p.x, p.y, p.x + w, p.y + h))
}

fn segment() -> impl Strategy<Value = Segment> {
    (point(), point()).prop_map(|(a, b)| Segment::new(a, b))
}

proptest! {
    /// Crossing and intersection are symmetric relations.
    #[test]
    fn crossing_is_symmetric(s in segment(), t in segment()) {
        prop_assert_eq!(s.crosses(&t), t.crosses(&s));
        prop_assert_eq!(s.intersects(&t), t.intersects(&s));
    }

    /// Crossing implies intersecting.
    #[test]
    fn crossing_implies_intersecting(s in segment(), t in segment()) {
        if s.crosses(&t) {
            prop_assert!(s.intersects(&t));
        }
    }

    /// Translating both segments by the same vector preserves crossing.
    #[test]
    fn crossing_is_translation_invariant(s in segment(), t in segment(), d in point()) {
        let shift = |seg: &Segment| Segment::new(seg.a + d, seg.b + d);
        prop_assert_eq!(s.crosses(&t), shift(&s).crosses(&shift(&t)));
    }

    /// Euclidean rect gap is symmetric, zero iff the closed rects touch,
    /// and translation invariant.
    #[test]
    fn rect_gap_properties(a in rect(), b in rect(), d in point()) {
        prop_assert_eq!(a.euclid_gap_sq(&b), b.euclid_gap_sq(&a));
        prop_assert_eq!(a.euclid_gap_sq(&b) == 0, a.touches(&b));
        let (sa, sb) = (a.shift(d.x, d.y), b.shift(d.x, d.y));
        prop_assert_eq!(a.euclid_gap_sq(&b), sa.euclid_gap_sq(&sb));
    }

    /// The hull contains both rects; the intersection (when it exists) is
    /// contained in both.
    #[test]
    fn hull_and_intersection_ordering(a in rect(), b in rect()) {
        let h = a.hull(&b);
        prop_assert!(h.x_lo() <= a.x_lo() && h.x_hi() >= b.x_hi());
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.overlaps(&i) && b.overlaps(&i));
            prop_assert!(i.area() <= a.area() && i.area() <= b.area());
        } else {
            prop_assert!(!a.overlaps(&b));
        }
    }

    /// Interval gap/overlap coherence and signed-gap consistency.
    #[test]
    fn interval_gap_coherence(a in (-500i64..500, 1i64..300), b in (-500i64..500, 1i64..300)) {
        let ia = Interval::new(a.0, a.0 + a.1);
        let ib = Interval::new(b.0, b.0 + b.1);
        prop_assert_eq!(ia.gap(&ib), ib.gap(&ia));
        prop_assert_eq!(ia.overlaps(&ib), ia.gap(&ib) == 0);
        prop_assert_eq!(ia.gap(&ib), ia.signed_gap(&ib).max(0));
    }

    /// Orientation flips sign when two arguments swap.
    #[test]
    fn orientation_antisymmetry(a in point(), b in point(), c in point()) {
        use aapsm_geom::Orientation::*;
        let o1 = Point::orient(a, b, c);
        let o2 = Point::orient(b, a, c);
        match o1 {
            Collinear => prop_assert_eq!(o2, Collinear),
            Clockwise => prop_assert_eq!(o2, CounterClockwise),
            CounterClockwise => prop_assert_eq!(o2, Clockwise),
        }
    }

    /// Midpoint lies on the connecting segment (for even-parity safety the
    /// rounded midpoint must still be inside the bounding box and, when
    /// exact, collinear).
    #[test]
    fn midpoint_is_between(a in point(), b in point()) {
        let m = a.midpoint(b);
        prop_assert!(m.x >= a.x.min(b.x) && m.x <= a.x.max(b.x));
        prop_assert!(m.y >= a.y.min(b.y) && m.y <= a.y.max(b.y));
    }
}
