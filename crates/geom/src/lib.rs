//! Exact integer 2-D geometry for mask layouts.
//!
//! All coordinates are [`i64`] database units (by convention 1 dbu = 1 nm at
//! the 90 nm node used throughout this workspace). Every predicate is exact:
//! intermediate products are computed in `i128`, so there is no floating
//! point anywhere in the phase-conflict flow built on top of this crate.
//!
//! The crate provides:
//!
//! * [`Point`] — a 2-D integer point with exact orientation predicates,
//! * [`Interval`] — a 1-D closed integer interval,
//! * [`Rect`] — an axis-aligned rectangle with exact gap/distance queries,
//! * [`Segment`] — a line segment with exact crossing predicates (the
//!   workhorse of planar-embedding crossing detection),
//! * [`GridIndex`] — a uniform spatial hash used to find interacting pairs
//!   among hundreds of thousands of shifters or graph edges in near-linear
//!   time.
//!
//! # Example
//!
//! ```
//! use aapsm_geom::{Point, Rect, Segment};
//!
//! let a = Rect::new(0, 0, 100, 400);
//! let b = Rect::new(160, 0, 260, 400);
//! assert_eq!(a.x_gap(&b), 60);            // 60 dbu of horizontal space
//! assert!(a.euclid_gap_sq(&b) < 80 * 80); // closer than an 80 dbu rule
//!
//! let s = Segment::new(Point::new(0, 0), Point::new(10, 10));
//! let t = Segment::new(Point::new(0, 10), Point::new(10, 0));
//! assert!(s.crosses(&t)); // proper interior crossing
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod dirty;
pub mod fxhash;
mod grid;
mod interval;
mod point;
mod rect;
mod segment;
mod soa;

pub use dirty::{CutSpec, DirtyRegions};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use grid::{par_map_indexed, resolve_workers, GridIndex, GridShards, QueryScratch};
pub use interval::Interval;
pub use point::{Orientation, Point};
pub use rect::{Axis, Rect};
pub use segment::Segment;
pub use soa::{RectSoA, SegmentSoA};
