//! Structure-of-arrays mirrors of [`Rect`] and [`Segment`] for batched
//! pairwise predicates.
//!
//! The pair-scan hot loops (shifter spacing checks, segment crossing
//! detection) touch two predicates per candidate pair: a Euclidean-gap
//! test between rectangles and a segment-crossing test. Their inputs
//! normally live inside larger structs (`Shifter`, graph edge endpoints),
//! so every probe drags a whole cache line of unrelated fields through
//! the cache. These SoA buffers pack just the coordinates contiguously —
//! four (or eight) parallel `i64` arrays — so a pair probe touches
//! exactly the bytes it needs and the rejection fast path (bbox/gap
//! tests) stays in cache across a band of candidates.
//!
//! Every predicate here is **bit-identical** to its AoS counterpart: the
//! gap math reproduces [`Rect::euclid_gap_sq`]/[`Rect::x_gap`] exactly,
//! and [`SegmentSoA::crosses`] defers to [`Segment::crosses`] after the
//! same bbox rejection that predicate performs first anyway. The parallel
//! equivalence suites pin this down.

use crate::{Point, Rect, Segment};

/// Parallel coordinate arrays for a set of rectangles.
#[derive(Clone, Debug, Default)]
pub struct RectSoA {
    x_lo: Vec<i64>,
    y_lo: Vec<i64>,
    x_hi: Vec<i64>,
    y_hi: Vec<i64>,
}

impl RectSoA {
    /// An empty buffer with room for `cap` rectangles.
    pub fn with_capacity(cap: usize) -> RectSoA {
        RectSoA {
            x_lo: Vec::with_capacity(cap),
            y_lo: Vec::with_capacity(cap),
            x_hi: Vec::with_capacity(cap),
            y_hi: Vec::with_capacity(cap),
        }
    }

    /// Packs the rectangles produced by `rects`, in order.
    pub fn from_rects<'a>(rects: impl IntoIterator<Item = &'a Rect>) -> RectSoA {
        let mut soa = RectSoA::default();
        for r in rects {
            soa.push(r);
        }
        soa
    }

    /// Appends one rectangle.
    pub fn push(&mut self, r: &Rect) {
        self.x_lo.push(r.x_lo());
        self.y_lo.push(r.y_lo());
        self.x_hi.push(r.x_hi());
        self.y_hi.push(r.y_hi());
    }

    /// Number of packed rectangles.
    pub fn len(&self) -> usize {
        self.x_lo.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.x_lo.is_empty()
    }

    /// Signed horizontal separation of rectangles `a` and `b` — exactly
    /// [`Rect::x_gap`].
    #[inline]
    pub fn x_gap(&self, a: usize, b: usize) -> i64 {
        (self.x_lo[b] - self.x_hi[a]).max(self.x_lo[a] - self.x_hi[b])
    }

    /// Signed vertical separation — exactly [`Rect::y_gap`].
    #[inline]
    pub fn y_gap(&self, a: usize, b: usize) -> i64 {
        (self.y_lo[b] - self.y_hi[a]).max(self.y_lo[a] - self.y_hi[b])
    }

    /// Exact squared Euclidean distance between the closed rectangles —
    /// exactly [`Rect::euclid_gap_sq`].
    #[inline]
    pub fn gap_sq(&self, a: usize, b: usize) -> i128 {
        let dx = self.x_gap(a, b).max(0) as i128;
        let dy = self.y_gap(a, b).max(0) as i128;
        dx * dx + dy * dy
    }
}

/// Parallel endpoint-coordinate arrays for a set of segments.
#[derive(Clone, Debug, Default)]
pub struct SegmentSoA {
    ax: Vec<i64>,
    ay: Vec<i64>,
    bx: Vec<i64>,
    by: Vec<i64>,
}

impl SegmentSoA {
    /// An empty buffer with room for `cap` segments.
    pub fn with_capacity(cap: usize) -> SegmentSoA {
        SegmentSoA {
            ax: Vec::with_capacity(cap),
            ay: Vec::with_capacity(cap),
            bx: Vec::with_capacity(cap),
            by: Vec::with_capacity(cap),
        }
    }

    /// Appends one segment.
    pub fn push(&mut self, s: &Segment) {
        self.ax.push(s.a.x);
        self.ay.push(s.a.y);
        self.bx.push(s.b.x);
        self.by.push(s.b.y);
    }

    /// Number of packed segments.
    pub fn len(&self) -> usize {
        self.ax.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.ax.is_empty()
    }

    /// Reconstructs segment `i`.
    #[inline]
    pub fn segment(&self, i: usize) -> Segment {
        Segment::new(
            Point::new(self.ax[i], self.ay[i]),
            Point::new(self.bx[i], self.by[i]),
        )
    }

    /// Whether segments `i` and `j` cross — exactly
    /// [`Segment::crosses`], with the bounding-box rejection (the
    /// predicate's own first step) run on the packed coordinates so the
    /// overwhelmingly common disjoint case never reconstructs a
    /// [`Segment`].
    #[inline]
    pub fn crosses(&self, i: usize, j: usize) -> bool {
        let (ix_lo, ix_hi) = min_max(self.ax[i], self.bx[i]);
        let (jx_lo, jx_hi) = min_max(self.ax[j], self.bx[j]);
        if ix_hi < jx_lo || jx_hi < ix_lo {
            return false;
        }
        let (iy_lo, iy_hi) = min_max(self.ay[i], self.by[i]);
        let (jy_lo, jy_hi) = min_max(self.ay[j], self.by[j]);
        if iy_hi < jy_lo || jy_hi < iy_lo {
            return false;
        }
        self.segment(i).crosses(&self.segment(j))
    }
}

#[inline]
fn min_max(a: i64, b: i64) -> (i64, i64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rect_soa_matches_rect_predicates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let rects: Vec<Rect> = (0..60)
            .map(|_| {
                let x = rng.gen_range(-500..500);
                let y = rng.gen_range(-500..500);
                Rect::new(x, y, x + rng.gen_range(1..80), y + rng.gen_range(1..80))
            })
            .collect();
        let soa = RectSoA::from_rects(&rects);
        assert_eq!(soa.len(), rects.len());
        for i in 0..rects.len() {
            for j in 0..rects.len() {
                assert_eq!(soa.x_gap(i, j), rects[i].x_gap(&rects[j]), "{i},{j}");
                assert_eq!(soa.y_gap(i, j), rects[i].y_gap(&rects[j]), "{i},{j}");
                assert_eq!(
                    soa.gap_sq(i, j),
                    rects[i].euclid_gap_sq(&rects[j]),
                    "{i},{j}"
                );
            }
        }
    }

    #[test]
    fn segment_soa_matches_segment_crosses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut soa = SegmentSoA::with_capacity(80);
        let segs: Vec<Segment> = (0..80)
            .map(|_| {
                // Small coordinate range on purpose: dense overlap,
                // collinear and shared-endpoint cases all arise.
                let s = Segment::new(
                    Point::new(rng.gen_range(-12..12), rng.gen_range(-12..12)),
                    Point::new(rng.gen_range(-12..12), rng.gen_range(-12..12)),
                );
                soa.push(&s);
                s
            })
            .collect();
        for i in 0..segs.len() {
            assert_eq!(soa.segment(i), segs[i]);
            for j in 0..segs.len() {
                assert_eq!(soa.crosses(i, j), segs[i].crosses(&segs[j]), "{i},{j}");
            }
        }
    }
}
