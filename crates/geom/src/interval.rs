use std::fmt;

/// A closed 1-D integer interval `[lo, hi]` with `lo <= hi`.
///
/// Intervals describe projections of layout geometry onto an axis; the
/// correction planner uses them as the legal positions of end-to-end
/// space-insertion cut lines.
///
/// ```
/// use aapsm_geom::Interval;
/// let a = Interval::new(0, 10);
/// let b = Interval::new(4, 20);
/// assert_eq!(a.intersect(&b), Some(Interval::new(4, 10)));
/// assert_eq!(a.gap(&Interval::new(15, 20)), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    lo: i64,
    hi: i64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Lower bound.
    pub fn lo(&self) -> i64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> i64 {
        self.hi
    }

    /// Length `hi - lo` (zero for a point interval).
    ///
    /// No `is_empty` companion on purpose: a closed interval always
    /// contains at least its endpoint, so `len() == 0` means "point",
    /// which [`Interval::is_point`] already states unambiguously.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> i64 {
        self.hi - self.lo
    }

    /// Whether the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether `v` lies inside the closed interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the closed intervals share at least one point.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// The smallest interval containing both.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Distance between the intervals: `0` when they overlap or touch,
    /// otherwise the size of the empty space separating them.
    pub fn gap(&self, other: &Interval) -> i64 {
        if self.overlaps(other) {
            0
        } else if self.hi < other.lo {
            other.lo - self.hi
        } else {
            self.lo - other.hi
        }
    }

    /// Signed separation: positive = empty space between the intervals,
    /// negative = size of their overlap, zero = they exactly touch.
    pub fn signed_gap(&self, other: &Interval) -> i64 {
        (other.lo - self.hi).max(self.lo - other.hi)
    }

    /// Translates the interval by `delta`.
    pub fn shift(&self, delta: i64) -> Interval {
        Interval {
            lo: self.lo + delta,
            hi: self.hi + delta,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_inverted_bounds() {
        let _ = Interval::new(5, 4);
    }

    #[test]
    fn overlap_and_touch() {
        let a = Interval::new(0, 10);
        assert!(a.overlaps(&Interval::new(10, 20))); // closed: touching counts
        assert!(!a.overlaps(&Interval::new(11, 20)));
        assert!(a.overlaps(&Interval::point(5)));
    }

    #[test]
    fn gap_values() {
        let a = Interval::new(0, 10);
        assert_eq!(a.gap(&Interval::new(15, 20)), 5);
        assert_eq!(a.gap(&Interval::new(-20, -3)), 3);
        assert_eq!(a.gap(&Interval::new(5, 7)), 0);
        assert_eq!(a.signed_gap(&Interval::new(5, 30)), -5);
        assert_eq!(a.signed_gap(&Interval::new(10, 30)), 0);
        assert_eq!(a.signed_gap(&Interval::new(12, 30)), 2);
    }

    #[test]
    fn intersect_and_hull() {
        let a = Interval::new(0, 10);
        let b = Interval::new(4, 20);
        assert_eq!(a.intersect(&b), Some(Interval::new(4, 10)));
        assert_eq!(a.intersect(&Interval::new(11, 12)), None);
        assert_eq!(a.hull(&b), Interval::new(0, 20));
    }
}
