use crate::{Interval, Point};
use std::fmt;

/// One of the two layout axes.
///
/// By the conventions of the correction planner, a *vertical* space-insertion
/// cut line is positioned along [`Axis::X`] (it shifts geometry horizontally)
/// and a *horizontal* one along [`Axis::Y`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The horizontal axis.
    X,
    /// The vertical axis.
    Y,
}

impl Axis {
    /// The other axis.
    pub fn perp(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
        }
    }
}

/// An axis-aligned rectangle `[x_lo, x_hi] × [y_lo, y_hi]` with positive
/// extent on both axes.
///
/// ```
/// use aapsm_geom::Rect;
/// let r = Rect::new(0, 0, 100, 400);
/// assert_eq!(r.width(), 100);
/// assert_eq!(r.height(), 400);
/// assert_eq!(r.area(), 40_000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rect {
    x_lo: i64,
    y_lo: i64,
    x_hi: i64,
    y_hi: i64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle would be empty (`x_lo >= x_hi` or
    /// `y_lo >= y_hi`).
    pub fn new(x_lo: i64, y_lo: i64, x_hi: i64, y_hi: i64) -> Self {
        assert!(
            x_lo < x_hi && y_lo < y_hi,
            "degenerate rect [{x_lo},{x_hi}]x[{y_lo},{y_hi}]"
        );
        Rect {
            x_lo,
            y_lo,
            x_hi,
            y_hi,
        }
    }

    /// Creates a rectangle from two opposite corners in any order.
    ///
    /// Returns `None` if the corners coincide on either axis.
    pub fn from_corners(a: Point, b: Point) -> Option<Self> {
        let (x_lo, x_hi) = (a.x.min(b.x), a.x.max(b.x));
        let (y_lo, y_hi) = (a.y.min(b.y), a.y.max(b.y));
        (x_lo < x_hi && y_lo < y_hi).then_some(Rect {
            x_lo,
            y_lo,
            x_hi,
            y_hi,
        })
    }

    /// Left edge.
    pub fn x_lo(&self) -> i64 {
        self.x_lo
    }
    /// Right edge.
    pub fn x_hi(&self) -> i64 {
        self.x_hi
    }
    /// Bottom edge.
    pub fn y_lo(&self) -> i64 {
        self.y_lo
    }
    /// Top edge.
    pub fn y_hi(&self) -> i64 {
        self.y_hi
    }

    /// Horizontal extent.
    pub fn width(&self) -> i64 {
        self.x_hi - self.x_lo
    }

    /// Vertical extent.
    pub fn height(&self) -> i64 {
        self.y_hi - self.y_lo
    }

    /// The shorter of width and height (the "critical dimension" side).
    pub fn min_dim(&self) -> i64 {
        self.width().min(self.height())
    }

    /// Exact area in dbu² (`i128`; never overflows for chip-scale inputs).
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Geometric center, rounded toward negative infinity.
    pub fn center(&self) -> Point {
        Point::new(
            self.x_lo + self.width().div_euclid(2),
            self.y_lo + self.height().div_euclid(2),
        )
    }

    /// Projection onto an axis as a closed interval.
    pub fn span(&self, axis: Axis) -> Interval {
        match axis {
            Axis::X => Interval::new(self.x_lo, self.x_hi),
            Axis::Y => Interval::new(self.y_lo, self.y_hi),
        }
    }

    /// Whether the rectangles share interior area (touching edges do not
    /// count).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x_lo < other.x_hi
            && other.x_lo < self.x_hi
            && self.y_lo < other.y_hi
            && other.y_lo < self.y_hi
    }

    /// Whether the closed rectangles intersect (touching counts).
    pub fn touches(&self, other: &Rect) -> bool {
        self.x_lo <= other.x_hi
            && other.x_lo <= self.x_hi
            && self.y_lo <= other.y_hi
            && other.y_lo <= self.y_hi
    }

    /// Whether `p` lies inside the closed rectangle.
    pub fn contains(&self, p: Point) -> bool {
        self.span(Axis::X).contains(p.x) && self.span(Axis::Y).contains(p.y)
    }

    /// Signed horizontal separation: positive = empty space, negative =
    /// overlap depth, zero = abutting.
    pub fn x_gap(&self, other: &Rect) -> i64 {
        self.span(Axis::X).signed_gap(&other.span(Axis::X))
    }

    /// Signed vertical separation (see [`Rect::x_gap`]).
    pub fn y_gap(&self, other: &Rect) -> i64 {
        self.span(Axis::Y).signed_gap(&other.span(Axis::Y))
    }

    /// Signed separation along `axis`.
    pub fn gap(&self, other: &Rect, axis: Axis) -> i64 {
        match axis {
            Axis::X => self.x_gap(other),
            Axis::Y => self.y_gap(other),
        }
    }

    /// Exact squared Euclidean distance between the closed rectangles
    /// (zero when they touch or overlap).
    ///
    /// This is the corner-to-corner spacing measure used by Euclidean DRC
    /// spacing rules: two shifters violate a spacing rule `s` iff
    /// `euclid_gap_sq < s²`.
    pub fn euclid_gap_sq(&self, other: &Rect) -> i128 {
        let dx = self.x_gap(other).max(0) as i128;
        let dy = self.y_gap(other).max(0) as i128;
        dx * dx + dy * dy
    }

    /// The smallest rectangle containing both.
    pub fn hull(&self, other: &Rect) -> Rect {
        Rect {
            x_lo: self.x_lo.min(other.x_lo),
            y_lo: self.y_lo.min(other.y_lo),
            x_hi: self.x_hi.max(other.x_hi),
            y_hi: self.y_hi.max(other.y_hi),
        }
    }

    /// The overlap rectangle of the *closed* rectangles, if any; degenerate
    /// (zero-width or zero-height) contact regions are returned as the
    /// contact interval inflated to nothing — i.e. `None` is returned unless
    /// the rectangles share interior area. Use [`Rect::overlap_region_center`]
    /// for the "center of the region of overlap" of two shifters regardless
    /// of degeneracy.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x_lo = self.x_lo.max(other.x_lo);
        let y_lo = self.y_lo.max(other.y_lo);
        let x_hi = self.x_hi.min(other.x_hi);
        let y_hi = self.y_hi.min(other.y_hi);
        (x_lo < x_hi && y_lo < y_hi).then_some(Rect {
            x_lo,
            y_lo,
            x_hi,
            y_hi,
        })
    }

    /// Center of the interaction region of two nearby rectangles.
    ///
    /// For overlapping rectangles this is the center of the intersection;
    /// otherwise it is the midpoint of the gap between the closest
    /// approaches. This is the geometric detour point at which the feature
    /// graph of Kahng et al. places its conflict nodes.
    pub fn overlap_region_center(&self, other: &Rect) -> Point {
        let x = clamp_center(self.x_lo, self.x_hi, other.x_lo, other.x_hi);
        let y = clamp_center(self.y_lo, self.y_hi, other.y_lo, other.y_hi);
        Point::new(x, y)
    }

    /// Translates the rectangle.
    pub fn shift(&self, dx: i64, dy: i64) -> Rect {
        Rect {
            x_lo: self.x_lo + dx,
            y_lo: self.y_lo + dy,
            x_hi: self.x_hi + dx,
            y_hi: self.y_hi + dy,
        }
    }

    /// Grows the rectangle outward by `margin` on all four sides.
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would make the rectangle empty.
    pub fn inflate(&self, margin: i64) -> Rect {
        Rect::new(
            self.x_lo - margin,
            self.y_lo - margin,
            self.x_hi + margin,
            self.y_hi + margin,
        )
    }
}

/// Midpoint of the overlap of `[a_lo, a_hi]` and `[b_lo, b_hi]` when they
/// overlap, else midpoint of the gap between them.
fn clamp_center(a_lo: i64, a_hi: i64, b_lo: i64, b_hi: i64) -> i64 {
    let lo = a_lo.max(b_lo);
    let hi = a_hi.min(b_hi);
    // When disjoint, lo > hi and (lo + hi) / 2 is still the gap midpoint.
    ((lo as i128 + hi as i128).div_euclid(2)) as i64
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{},{}]x[{},{}]",
            self.x_lo, self.x_hi, self.y_lo, self.y_hi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_are_signed() {
        let a = Rect::new(0, 0, 100, 400);
        let b = Rect::new(160, 100, 260, 500);
        assert_eq!(a.x_gap(&b), 60);
        assert_eq!(a.y_gap(&b), -300); // y spans overlap by 300
        assert_eq!(b.x_gap(&a), 60); // symmetric
        assert_eq!(a.euclid_gap_sq(&b), 3600);
    }

    #[test]
    fn euclid_gap_diagonal() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(13, 14, 20, 20);
        assert_eq!(a.euclid_gap_sq(&b), 9 + 16);
    }

    #[test]
    fn overlap_vs_touch() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(!a.overlaps(&b));
        assert!(a.touches(&b));
        assert_eq!(a.euclid_gap_sq(&b), 0);
    }

    #[test]
    fn intersection_and_hull() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 20, 20);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        assert_eq!(a.hull(&b), Rect::new(0, 0, 20, 20));
    }

    #[test]
    fn overlap_region_center_disjoint_is_gap_midpoint() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(20, 0, 30, 10);
        assert_eq!(a.overlap_region_center(&b), Point::new(15, 5));
    }

    #[test]
    fn span_and_center() {
        let r = Rect::new(-10, 0, 10, 7);
        assert_eq!(r.span(Axis::X), Interval::new(-10, 10));
        assert_eq!(r.center(), Point::new(0, 3));
        assert_eq!(r.min_dim(), 7);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_empty() {
        let _ = Rect::new(0, 0, 0, 10);
    }
}
