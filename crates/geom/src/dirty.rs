//! Dirty regions induced by end-to-end space insertion — the geometric
//! contract behind the incremental re-detection pipeline.
//!
//! An end-to-end cut at pre-cut coordinate `p` on an axis inserts `width`
//! dbu of space: geometry strictly below `p` stays, geometry strictly
//! above translates by `width`, geometry spanning `p` stretches. A
//! [`DirtyRegions`] value summarizes a batch of such cuts and answers the
//! two questions incremental consumers ask:
//!
//! 1. **Rigidity** ([`DirtyRegions::rigid_shift_of`]): did a pre-cut
//!    bounding box move as one rigid translation, and by how much? A box
//!    is rigid iff no cut line touches its closed span on either axis;
//!    its shift per axis is the total width of the cuts strictly below
//!    it. Touching counts as dirty on purpose: a rect ending exactly on a
//!    cut line keeps its coordinates while a rect starting there shifts,
//!    so closed contact is where translation-invariance arguments stop
//!    holding (e.g. grid-query *touching* predicates can flip).
//! 2. **Post-cut slabs** ([`DirtyRegions::slabs`]): the inserted-space
//!    strips in *post-cut* coordinates. A cut at `p` with `c` dbu of
//!    lower-cut width below it occupies `[p + c, p + c + width]` after
//!    application. Everything whose relation to the layout changed
//!    (stretched rects, separated pairs, boundary-touching rects)
//!    intersects a slab, closed-contact included — see the invariants
//!    below.
//!
//! # Invariants (mirroring `aapsm_core::shard`'s style)
//!
//! * **Complementarity.** For any pre-cut box `B`,
//!   `rigid_shift_of(B).is_some()` ⇔ the translated box strictly avoids
//!   every post-cut slab. Incremental consumers rely on this to split
//!   work into a reused *clean* part (classified in pre-cut coordinates)
//!   and a recomputed *dirty* part (enumerated by post-cut slab queries)
//!   with no overlap and no gap.
//! * **Slab separation.** Two rigid boxes with *different* shifts are
//!   separated by at least one slab after the cuts: on the axis of a cut
//!   they disagree about, one ends strictly below the slab and the other
//!   starts strictly above it. Rigid same-shift geometry therefore keeps
//!   its entire relative configuration, and rigid different-shift
//!   geometry cannot interact without touching a slab.
//! * **Stretch containment.** A box that spans a cut line covers the
//!   whole inserted slab after application, so every stretched rect (and
//!   every pair involving one) is found by slab queries.

use crate::{Axis, Rect};

/// One end-to-end space insertion, described axis-agnostically (the geom
/// crate cannot name `aapsm_layout::SpaceCut`; the fields mirror it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutSpec {
    /// Axis whose coordinates grow.
    pub axis: Axis,
    /// Cut position in *pre-cut* coordinates (geometry with low edge ≥
    /// this shifts).
    pub position: i64,
    /// Inserted width (> 0).
    pub width: i64,
}

/// Per-axis cut bookkeeping: cuts ascending by position, with the
/// cumulative width of all lower cuts precomputed.
#[derive(Clone, Debug, Default)]
struct AxisCuts {
    /// `(pre-cut position, width, total width of cuts strictly below)`.
    cuts: Vec<(i64, i64, i64)>,
}

impl AxisCuts {
    fn build(mut positions: Vec<(i64, i64)>) -> AxisCuts {
        positions.sort_unstable();
        let mut cuts = Vec::with_capacity(positions.len());
        let mut cum = 0i64;
        for (p, w) in positions {
            cuts.push((p, w, cum));
            cum += w;
        }
        AxisCuts { cuts }
    }

    /// Whether any cut line touches the closed interval `[lo, hi]`.
    fn touches(&self, lo: i64, hi: i64) -> bool {
        let i = self.cuts.partition_point(|&(p, _, _)| p < lo);
        self.cuts.get(i).is_some_and(|&(p, _, _)| p <= hi)
    }

    /// Total width of cuts strictly below `coord` (the rigid shift of a
    /// box whose low edge is `coord` and that no cut line touches).
    fn shift_below(&self, coord: i64) -> i64 {
        match self.cuts.partition_point(|&(p, _, _)| p < coord) {
            0 => 0,
            i => {
                let (_, w, cum) = self.cuts[i - 1];
                cum + w
            }
        }
    }

    /// Inserted-space slabs in post-cut coordinates, ascending.
    fn slabs(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.cuts.iter().map(|&(p, w, cum)| (p + cum, p + cum + w))
    }
}

/// The dirty-region summary of a batch of end-to-end cuts; see the module
/// docs for the classification contract.
#[derive(Clone, Debug, Default)]
pub struct DirtyRegions {
    x: AxisCuts,
    y: AxisCuts,
}

impl DirtyRegions {
    /// Builds the summary from a batch of cuts (applied simultaneously in
    /// pre-cut coordinates, exactly like `aapsm_layout::apply_cuts`).
    ///
    /// # Panics
    ///
    /// Panics if any width is non-positive or two cuts on one axis share
    /// a position (their composition would be ambiguous).
    pub fn from_cuts(cuts: impl IntoIterator<Item = CutSpec>) -> DirtyRegions {
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        for c in cuts {
            assert!(c.width > 0, "cut width must be positive");
            match c.axis {
                Axis::X => xs.push((c.position, c.width)),
                Axis::Y => ys.push((c.position, c.width)),
            }
        }
        let regions = DirtyRegions {
            x: AxisCuts::build(xs),
            y: AxisCuts::build(ys),
        };
        for axis in [&regions.x, &regions.y] {
            assert!(
                axis.cuts.windows(2).all(|w| w[0].0 != w[1].0),
                "cut positions must be distinct per axis"
            );
        }
        regions
    }

    /// Whether there are no cuts at all (every box is rigid with zero
    /// shift).
    pub fn is_empty(&self) -> bool {
        self.x.cuts.is_empty() && self.y.cuts.is_empty()
    }

    fn axis(&self, axis: Axis) -> &AxisCuts {
        match axis {
            Axis::X => &self.x,
            Axis::Y => &self.y,
        }
    }

    /// Classifies a *pre-cut* bounding box `(x_lo, y_lo, x_hi, y_hi)`:
    /// `Some((dx, dy))` when the box rides the cuts as one rigid
    /// translation, `None` when any cut line touches its closed span
    /// (the box — or a pair of boxes hulled into it — is dirty).
    pub fn rigid_shift_of(&self, bbox: (i64, i64, i64, i64)) -> Option<(i64, i64)> {
        let (x_lo, y_lo, x_hi, y_hi) = bbox;
        if self.x.touches(x_lo, x_hi) || self.y.touches(y_lo, y_hi) {
            return None;
        }
        Some((self.x.shift_below(x_lo), self.y.shift_below(y_lo)))
    }

    /// [`DirtyRegions::rigid_shift_of`] over a [`Rect`].
    pub fn rigid_shift_of_rect(&self, r: &Rect) -> Option<(i64, i64)> {
        self.rigid_shift_of((r.x_lo(), r.y_lo(), r.x_hi(), r.y_hi()))
    }

    /// The inserted-space slabs of one axis in **post-cut** coordinates,
    /// as closed `(lo, hi)` spans along that axis (each slab extends over
    /// the full perpendicular extent of the layout).
    pub fn slabs(&self, axis: Axis) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.axis(axis).slabs()
    }

    /// Whether a **post-cut** bounding box touches any inserted-space
    /// slab (closed contact counts). By the complementarity invariant
    /// this is exactly the negation of [`DirtyRegions::rigid_shift_of`]
    /// on the box's pre-image. O(log cuts): slabs are disjoint and
    /// ascending, so one partition point per axis decides.
    pub fn post_bbox_touches_slab(&self, bbox: (i64, i64, i64, i64)) -> bool {
        let (x_lo, y_lo, x_hi, y_hi) = bbox;
        // First slab whose high end reaches the box; it touches iff it
        // also starts before the box ends.
        let axis_touches = |cuts: &AxisCuts, lo: i64, hi: i64| {
            let i = cuts.cuts.partition_point(|&(p, w, cum)| p + cum + w < lo);
            cuts.cuts.get(i).is_some_and(|&(p, _, cum)| p + cum <= hi)
        };
        axis_touches(&self.x, x_lo, x_hi) || axis_touches(&self.y, y_lo, y_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(axis: Axis, position: i64, width: i64) -> CutSpec {
        CutSpec {
            axis,
            position,
            width,
        }
    }

    #[test]
    fn empty_regions_shift_nothing() {
        let d = DirtyRegions::from_cuts([]);
        assert!(d.is_empty());
        assert_eq!(d.rigid_shift_of((-10, -10, 10, 10)), Some((0, 0)));
        assert!(!d.post_bbox_touches_slab((0, 0, 1, 1)));
    }

    #[test]
    fn rigid_shift_accumulates_lower_cuts() {
        let d = DirtyRegions::from_cuts([cut(Axis::X, 100, 5), cut(Axis::X, 200, 7)]);
        // Below both cuts.
        assert_eq!(d.rigid_shift_of((0, 0, 99, 10)), Some((0, 0)));
        // Between them.
        assert_eq!(d.rigid_shift_of((101, 0, 199, 10)), Some((5, 0)));
        // Above both.
        assert_eq!(d.rigid_shift_of((201, 0, 300, 10)), Some((12, 0)));
        // Touching a cut line (either end) is dirty.
        assert_eq!(d.rigid_shift_of((0, 0, 100, 10)), None);
        assert_eq!(d.rigid_shift_of((100, 0, 150, 10)), None);
        // Straddling is dirty.
        assert_eq!(d.rigid_shift_of((50, 0, 150, 10)), None);
    }

    #[test]
    fn both_axes_compose() {
        let d = DirtyRegions::from_cuts([cut(Axis::X, 10, 3), cut(Axis::Y, 20, 4)]);
        assert_eq!(d.rigid_shift_of((11, 21, 15, 25)), Some((3, 4)));
        assert_eq!(d.rigid_shift_of((0, 21, 5, 25)), Some((0, 4)));
        assert_eq!(d.rigid_shift_of((0, 10, 5, 20)), None); // touches y cut
    }

    #[test]
    fn slabs_are_in_post_cut_coordinates() {
        let d = DirtyRegions::from_cuts([cut(Axis::X, 200, 7), cut(Axis::X, 100, 5)]);
        let slabs: Vec<_> = d.slabs(Axis::X).collect();
        // Cut at 100 lands at [100, 105]; cut at 200 is pushed up by the
        // lower one's 5 dbu: [205, 212].
        assert_eq!(slabs, vec![(100, 105), (205, 212)]);
        assert!(d.slabs(Axis::Y).next().is_none());
    }

    #[test]
    fn complementarity_of_rigid_and_slab_touch() {
        // For boxes avoiding / touching / straddling cut lines, the
        // translated image avoids or touches the slabs accordingly.
        let d = DirtyRegions::from_cuts([cut(Axis::X, 100, 5), cut(Axis::X, 200, 7)]);
        for (bbox, expect_rigid) in [
            ((0i64, 0i64, 99i64, 10i64), true),
            ((101, 0, 199, 10), true),
            ((201, 0, 400, 10), true),
            ((0, 0, 100, 10), false),
            ((100, 0, 130, 10), false),
            ((90, 0, 210, 10), false),
        ] {
            match d.rigid_shift_of(bbox) {
                Some((dx, dy)) => {
                    assert!(expect_rigid, "{bbox:?}");
                    let post = (bbox.0 + dx, bbox.1 + dy, bbox.2 + dx, bbox.3 + dy);
                    assert!(!d.post_bbox_touches_slab(post), "{bbox:?} -> {post:?}");
                }
                None => {
                    assert!(!expect_rigid, "{bbox:?}");
                    // A straddling box covers the slab; a touching box
                    // touches it once its (unchanged or shifted) edge is
                    // mapped forward. Spot-check the straddler.
                    if bbox.0 < 100 && bbox.2 > 100 {
                        assert!(d.post_bbox_touches_slab(bbox));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_positions_rejected() {
        let _ = DirtyRegions::from_cuts([cut(Axis::X, 5, 1), cut(Axis::X, 5, 2)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = DirtyRegions::from_cuts([cut(Axis::X, 5, 0)]);
    }
}
