use crate::{Orientation, Point, Rect};
use std::fmt;

/// A line segment between two (possibly coincident) integer points.
///
/// Segments are the geometric realization of conflict-graph edges in the
/// straight-line embedding; [`Segment::crosses`] is the predicate that
/// decides whether two embedded edges prevent a planar embedding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// The axis-aligned bounding box, degenerate boxes inflated to unit size
    /// are *not* produced — use [`Segment::bbox_ranges`] for exact ranges.
    pub fn bbox_ranges(&self) -> (i64, i64, i64, i64) {
        (
            self.a.x.min(self.b.x),
            self.a.y.min(self.b.y),
            self.a.x.max(self.b.x),
            self.a.y.max(self.b.y),
        )
    }

    /// Whether `p` lies on the closed segment (exact).
    pub fn contains(&self, p: Point) -> bool {
        if Point::orient(self.a, self.b, p) != Orientation::Collinear {
            return false;
        }
        let (x_lo, y_lo, x_hi, y_hi) = self.bbox_ranges();
        x_lo <= p.x && p.x <= x_hi && y_lo <= p.y && p.y <= y_hi
    }

    /// Whether the closed segments share at least one point (exact).
    pub fn intersects(&self, other: &Segment) -> bool {
        let (x_lo, y_lo, x_hi, y_hi) = self.bbox_ranges();
        let (ox_lo, oy_lo, ox_hi, oy_hi) = other.bbox_ranges();
        if x_hi < ox_lo || ox_hi < x_lo || y_hi < oy_lo || oy_hi < y_lo {
            return false;
        }
        let d1 = Point::orient(other.a, other.b, self.a);
        let d2 = Point::orient(other.a, other.b, self.b);
        let d3 = Point::orient(self.a, self.b, other.a);
        let d4 = Point::orient(self.a, self.b, other.b);
        if opposite(d1, d2) && opposite(d3, d4) {
            return true;
        }
        (d1 == Orientation::Collinear && other_contains_on_box(other, self.a))
            || (d2 == Orientation::Collinear && other_contains_on_box(other, self.b))
            || (d3 == Orientation::Collinear && other_contains_on_box(self, other.a))
            || (d4 == Orientation::Collinear && other_contains_on_box(self, other.b))
    }

    /// Whether two embedded graph edges *cross* — i.e. intersect anywhere
    /// other than at a shared endpoint.
    ///
    /// This is the planarity-violation predicate:
    ///
    /// * a proper interior crossing is a cross;
    /// * one segment's endpoint in the other's interior (a "T" contact) is a
    ///   cross, because a plane graph may only meet at vertices;
    /// * collinear overlap over more than one point is a cross;
    /// * segments that only share one or two endpoints do **not** cross.
    ///
    /// ```
    /// use aapsm_geom::{Point, Segment};
    /// let s = Segment::new(Point::new(0, 0), Point::new(10, 0));
    /// // Shared endpoint only: not a crossing.
    /// assert!(!s.crosses(&Segment::new(Point::new(10, 0), Point::new(20, 5))));
    /// // T-contact in the interior: a crossing.
    /// assert!(s.crosses(&Segment::new(Point::new(5, 0), Point::new(5, 5))));
    /// ```
    pub fn crosses(&self, other: &Segment) -> bool {
        if !self.intersects(other) {
            return false;
        }
        // They intersect; decide whether the intersection is exactly a
        // shared endpoint.
        let shared: Vec<Point> = [self.a, self.b]
            .into_iter()
            .filter(|p| *p == other.a || *p == other.b)
            .collect();
        match shared.len() {
            0 => true,
            1 => {
                let p = shared[0];
                // The intersection must be only {p}: no other contact.
                // Check the non-shared endpoints are not on the other
                // segment, and the segments are not collinear-overlapping
                // beyond p.
                let self_other_end = if self.a == p { self.b } else { self.a };
                let other_other_end = if other.a == p { other.b } else { other.a };
                if self.contains(other_other_end) || other.contains(self_other_end) {
                    return true;
                }
                false
            }
            _ => {
                // Both endpoints shared: identical (or reversed) segments.
                // Parallel identical embeddings overlap everywhere.
                true
            }
        }
    }

    /// Whether a point lies in the *interior* of the segment (on it but not
    /// at an endpoint).
    pub fn interior_contains(&self, p: Point) -> bool {
        p != self.a && p != self.b && self.contains(p)
    }

    /// Length of the segment squared (exact).
    pub fn len_sq(&self) -> i128 {
        self.a.dist_sq(self.b)
    }

    /// Whether the segment is a single point.
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// Conservative bounding rectangle inflated so it is never degenerate.
    pub fn fat_bbox(&self) -> Rect {
        let (x_lo, y_lo, x_hi, y_hi) = self.bbox_ranges();
        Rect::new(x_lo - 1, y_lo - 1, x_hi + 1, y_hi + 1)
    }
}

fn opposite(a: Orientation, b: Orientation) -> bool {
    matches!(
        (a, b),
        (Orientation::Clockwise, Orientation::CounterClockwise)
            | (Orientation::CounterClockwise, Orientation::Clockwise)
    )
}

fn other_contains_on_box(seg: &Segment, p: Point) -> bool {
    let (x_lo, y_lo, x_hi, y_hi) = seg.bbox_ranges();
    x_lo <= p.x && p.x <= x_hi && y_lo <= p.y && p.y <= y_hi
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -- {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: i64, ay: i64, bx: i64, by: i64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        assert!(seg(0, 0, 10, 10).crosses(&seg(0, 10, 10, 0)));
    }

    #[test]
    fn disjoint_segments() {
        assert!(!seg(0, 0, 10, 0).crosses(&seg(0, 1, 10, 1)));
        assert!(!seg(0, 0, 1, 1).intersects(&seg(3, 3, 4, 4)));
    }

    #[test]
    fn shared_endpoint_is_not_a_crossing() {
        assert!(!seg(0, 0, 10, 0).crosses(&seg(10, 0, 20, 10)));
        assert!(!seg(0, 0, 10, 0).crosses(&seg(0, 0, -5, 3)));
        // But they do intersect.
        assert!(seg(0, 0, 10, 0).intersects(&seg(10, 0, 20, 10)));
    }

    #[test]
    fn t_contact_is_a_crossing() {
        assert!(seg(0, 0, 10, 0).crosses(&seg(5, 0, 5, 9)));
        assert!(seg(5, 0, 5, 9).crosses(&seg(0, 0, 10, 0)));
    }

    #[test]
    fn collinear_overlap_is_a_crossing() {
        assert!(seg(0, 0, 10, 0).crosses(&seg(5, 0, 15, 0)));
        // Collinear but disjoint: no.
        assert!(!seg(0, 0, 10, 0).crosses(&seg(11, 0, 15, 0)));
        // Collinear sharing exactly one endpoint: no crossing.
        assert!(!seg(0, 0, 10, 0).crosses(&seg(10, 0, 20, 0)));
        // Collinear containment sharing an endpoint: crossing (overlap is
        // more than a point).
        assert!(seg(0, 0, 10, 0).crosses(&seg(0, 0, 5, 0)));
    }

    #[test]
    fn identical_segments_cross() {
        assert!(seg(0, 0, 10, 0).crosses(&seg(0, 0, 10, 0)));
        assert!(seg(0, 0, 10, 0).crosses(&seg(10, 0, 0, 0)));
    }

    #[test]
    fn contains_checks_bounds() {
        let s = seg(0, 0, 10, 10);
        assert!(s.contains(Point::new(5, 5)));
        assert!(!s.contains(Point::new(11, 11)));
        assert!(!s.contains(Point::new(5, 6)));
        assert!(s.interior_contains(Point::new(5, 5)));
        assert!(!s.interior_contains(Point::new(0, 0)));
    }

    #[test]
    fn collinear_chain_through_midpoint_does_not_cross() {
        // Two halves of one straight line sharing the midpoint: the PCG
        // overlap-node pattern. Must NOT count as crossing each other.
        let left = seg(0, 0, 5, 0);
        let right = seg(5, 0, 10, 0);
        assert!(!left.crosses(&right));
    }
}
