use std::collections::HashMap;

/// A uniform spatial hash over `i64` space.
///
/// Items are inserted with an axis-aligned bounding range and can then be
/// queried for candidate neighbours. The index is the backbone of both
/// overlapping-shifter extraction and edge-crossing detection, which would
/// otherwise be quadratic on full-chip inputs.
///
/// The cell size should be on the order of the query interaction distance
/// (e.g. the shifter spacing rule, or the typical edge length); queries then
/// touch O(1) cells per item in well-behaved layouts.
///
/// ```
/// use aapsm_geom::GridIndex;
/// let mut grid = GridIndex::new(256);
/// grid.insert(0, (0, 0, 100, 100));
/// grid.insert(1, (90, 90, 200, 200));
/// grid.insert(2, (10_000, 10_000, 10_100, 10_100));
/// let mut pairs = grid.candidate_pairs();
/// pairs.sort_unstable();
/// assert_eq!(pairs, vec![(0, 1)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GridIndex {
    cell: i64,
    cells: HashMap<(i64, i64), Vec<u32>>,
    /// Bounding ranges per inserted id, in insertion order.
    boxes: Vec<(i64, i64, i64, i64)>,
}

impl GridIndex {
    /// Creates an index with the given cell size (dbu).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0`.
    pub fn new(cell_size: i64) -> Self {
        assert!(cell_size > 0, "cell size must be positive");
        GridIndex {
            cell: cell_size,
            cells: HashMap::new(),
            boxes: Vec::new(),
        }
    }

    /// Number of inserted items.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    fn cell_range(&self, bx: (i64, i64, i64, i64)) -> (i64, i64, i64, i64) {
        let (x_lo, y_lo, x_hi, y_hi) = bx;
        (
            x_lo.div_euclid(self.cell),
            y_lo.div_euclid(self.cell),
            x_hi.div_euclid(self.cell),
            y_hi.div_euclid(self.cell),
        )
    }

    /// Inserts an item with bounding range `(x_lo, y_lo, x_hi, y_hi)`.
    ///
    /// `id` is expected to be the next sequential id (`self.len()`); items
    /// are small integers so the pair enumeration can use dense bitsets.
    ///
    /// # Panics
    ///
    /// Panics if `id != self.len()` or the range is inverted.
    pub fn insert(&mut self, id: u32, bbox: (i64, i64, i64, i64)) {
        assert_eq!(id as usize, self.boxes.len(), "ids must be sequential");
        assert!(bbox.0 <= bbox.2 && bbox.1 <= bbox.3, "inverted bbox");
        let (cx_lo, cy_lo, cx_hi, cy_hi) = self.cell_range(bbox);
        for cx in cx_lo..=cx_hi {
            for cy in cy_lo..=cy_hi {
                self.cells.entry((cx, cy)).or_default().push(id);
            }
        }
        self.boxes.push(bbox);
    }

    /// Ids of items whose bounding range intersects the query range
    /// (deduplicated, unsorted).
    pub fn query(&self, bbox: (i64, i64, i64, i64)) -> Vec<u32> {
        let (cx_lo, cy_lo, cx_hi, cy_hi) = self.cell_range(bbox);
        let mut out = Vec::new();
        let mut seen = vec![false; self.boxes.len()];
        for cx in cx_lo..=cx_hi {
            for cy in cy_lo..=cy_hi {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    for &id in ids {
                        if !seen[id as usize] && ranges_touch(self.boxes[id as usize], bbox) {
                            seen[id as usize] = true;
                            out.push(id);
                        }
                    }
                }
            }
        }
        out
    }

    /// All unordered pairs `(i, j)` with `i < j` whose bounding ranges
    /// intersect. Each pair is reported exactly once.
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        let mut seen: HashMap<u64, ()> = HashMap::new();
        for ids in self.cells.values() {
            for (k, &i) in ids.iter().enumerate() {
                for &j in &ids[k + 1..] {
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    if a == b {
                        continue;
                    }
                    let key = (a as u64) << 32 | b as u64;
                    if seen.contains_key(&key) {
                        continue;
                    }
                    if ranges_touch(self.boxes[a as usize], self.boxes[b as usize]) {
                        seen.insert(key, ());
                        pairs.push((a, b));
                    }
                }
            }
        }
        pairs
    }
}

fn ranges_touch(a: (i64, i64, i64, i64), b: (i64, i64, i64, i64)) -> bool {
    a.0 <= b.2 && b.0 <= a.2 && a.1 <= b.3 && b.1 <= a.3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_pairs(boxes: &[(i64, i64, i64, i64)]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..boxes.len() {
            for j in i + 1..boxes.len() {
                if ranges_touch(boxes[i], boxes[j]) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn pairs_match_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let boxes: Vec<_> = (0..60)
                .map(|_| {
                    let x = rng.gen_range(-1000..1000);
                    let y = rng.gen_range(-1000..1000);
                    let w = rng.gen_range(1..300);
                    let h = rng.gen_range(1..300);
                    (x, y, x + w, y + h)
                })
                .collect();
            let mut grid = GridIndex::new(128);
            for (i, b) in boxes.iter().enumerate() {
                grid.insert(i as u32, *b);
            }
            let mut got = grid.candidate_pairs();
            got.sort_unstable();
            let mut want = brute_pairs(&boxes);
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn query_finds_touching_items() {
        let mut grid = GridIndex::new(100);
        grid.insert(0, (0, 0, 50, 50));
        grid.insert(1, (500, 500, 600, 600));
        let mut hits = grid.query((40, 40, 60, 60));
        hits.sort_unstable();
        assert_eq!(hits, vec![0]);
        // Touching at a corner counts.
        assert_eq!(grid.query((50, 50, 70, 70)), vec![0]);
        assert!(grid.query((200, 200, 210, 210)).is_empty());
    }

    #[test]
    fn negative_coordinates_work() {
        let mut grid = GridIndex::new(64);
        grid.insert(0, (-500, -500, -400, -400));
        grid.insert(1, (-450, -450, -300, -300));
        assert_eq!(grid.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn rejects_nonsequential_ids() {
        let mut grid = GridIndex::new(10);
        grid.insert(3, (0, 0, 1, 1));
    }
}
