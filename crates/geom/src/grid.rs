use crate::fxhash::FxHashMap;

/// A uniform spatial hash over `i64` space.
///
/// Items are inserted with an axis-aligned bounding range and can then be
/// queried for candidate neighbours. The index is the backbone of both
/// overlapping-shifter extraction and edge-crossing detection, which would
/// otherwise be quadratic on full-chip inputs.
///
/// The cell size should be on the order of the query interaction distance
/// (e.g. the shifter spacing rule, or the typical edge length); queries then
/// touch O(1) cells per item in well-behaved layouts.
///
/// # Streaming pair enumeration
///
/// Pair traversal is *streaming*: [`GridIndex::for_each_candidate_pair`]
/// visits every intersecting pair exactly once without materializing the
/// pair set, and [`GridIndex::shards`] partitions the occupied cells into
/// contiguous bands so disjoint slices of the traversal can run on worker
/// threads ([`GridIndex::par_collect_pairs`]). Exactly-once reporting
/// needs no dedup set: a pair is *owned* by the single cell containing the
/// min-corner of its boxes' intersection, and only that cell reports it.
///
/// ```
/// use aapsm_geom::GridIndex;
/// let mut grid = GridIndex::new(256);
/// grid.insert(0, (0, 0, 100, 100));
/// grid.insert(1, (90, 90, 200, 200));
/// grid.insert(2, (10_000, 10_000, 10_100, 10_100));
/// let mut pairs = grid.candidate_pairs();
/// pairs.sort_unstable();
/// assert_eq!(pairs, vec![(0, 1)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GridIndex {
    cell: i64,
    cells: FxHashMap<(i64, i64), Vec<u32>>,
    /// Bounding ranges per inserted id, in insertion order.
    boxes: Vec<(i64, i64, i64, i64)>,
}

/// Reusable dedup scratch for repeated [`GridIndex::query_into`] calls:
/// an epoch-stamped per-item table, so consecutive queries cost nothing
/// to reset.
#[derive(Clone, Debug, Default)]
pub struct QueryScratch {
    stamp: Vec<u32>,
    epoch: u32,
}

/// A partition of a grid's occupied cells into contiguous bands, produced
/// by [`GridIndex::shards`].
///
/// Cells are ordered lexicographically by cell coordinate; a shard is a
/// contiguous range of that order. Every occupied cell belongs to exactly
/// one shard, and every candidate pair is owned by exactly one cell, so
/// the shards induce a disjoint, exhaustive partition of the pair
/// traversal — the basis of the parallel detection front-end.
#[derive(Clone, Debug)]
pub struct GridShards {
    keys: Vec<(i64, i64)>,
    /// `count() + 1` offsets into `keys`; shard `s` covers
    /// `keys[bounds[s]..bounds[s + 1]]`.
    bounds: Vec<usize>,
}

impl GridShards {
    /// Number of shards.
    pub fn count(&self) -> usize {
        self.bounds.len() - 1
    }
}

/// Resolves a `parallelism` knob: `0` = one worker per available CPU,
/// otherwise the value itself (at least 1).
pub fn resolve_workers(parallelism: usize) -> usize {
    if parallelism == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        parallelism
    }
}

/// Maps `f` over `0..count` on at most `workers` scoped threads and
/// returns the results **in index order** — the shared worker-pool
/// scaffold of every parallel stage in this workspace.
///
/// Indices are handed out through an atomic cursor (self-balancing
/// without pre-sorting by size); each worker owns one `init()` state for
/// its whole batch (a solver arena, say) and buffers `(index, result)`
/// pairs locally, and the buffers are stitched by index afterwards, so
/// the output is independent of scheduling. `workers <= 1` (or a single
/// item) runs inline on the calling thread with the same one `init()`.
///
/// # Panic isolation
///
/// A panic in `f` is caught per item instead of taking down the whole
/// map: the panicking worker discards its (possibly poisoned) state,
/// re-`init()`s, and keeps draining the cursor; after the join, every
/// failed index is retried **once, serially, with a fresh state**. `f`
/// being a pure function of its index (the scaffold's standing
/// contract — worker state is reusable scratch that never influences
/// results), a transiently-injected panic heals to a bit-identical
/// output. A second panic on the retry is genuine and is propagated via
/// [`std::panic::resume_unwind`]. The serial path applies the same
/// catch-and-retry, so every parallelism degree has identical semantics.
///
/// # Panics
///
/// Propagates panics from `f` that recur on the retry, and any panic
/// from `init()`.
// Invariant, not an error path: the expects assert index-coverage of the
// batching (every slot filled exactly once) and deliberately re-raise
// worker panics per the documented # Panics contract.
#[allow(clippy::expect_used)]
pub fn par_map_indexed<T, S, I, F>(count: usize, workers: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    // One guarded application. `AssertUnwindSafe` is sound here because a
    // failed state is thrown away, never observed again.
    let attempt = |state: &mut S, i: usize| catch_unwind(AssertUnwindSafe(|| f(state, i)));
    // Retry pass over the indices whose first attempt panicked: once,
    // serially, each with a pristine state; a second panic propagates.
    let retry = |slots: &mut [Option<T>], failed: Vec<usize>| {
        for i in failed {
            let mut state = init();
            match attempt(&mut state, i) {
                Ok(out) => slots[i] = Some(out),
                Err(payload) => resume_unwind(payload),
            }
        }
    };

    if workers <= 1 || count <= 1 {
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let mut failed = Vec::new();
        let mut state = init();
        for (i, slot) in slots.iter_mut().enumerate() {
            match attempt(&mut state, i) {
                Ok(out) => *slot = Some(out),
                Err(_) => {
                    failed.push(i);
                    state = init();
                }
            }
        }
        retry(&mut slots, failed);
        return slots
            .into_iter()
            .map(|s| s.expect("every index is produced exactly once"))
            .collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let batches: Vec<Vec<(usize, Option<T>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(count))
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut batch = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        match attempt(&mut state, i) {
                            Ok(out) => batch.push((i, Some(out))),
                            Err(_) => {
                                batch.push((i, None));
                                state = init();
                            }
                        }
                    }
                    batch
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    let mut failed = Vec::new();
    for (i, out) in batches.into_iter().flatten() {
        match out {
            Some(out) => slots[i] = Some(out),
            None => failed.push(i),
        }
    }
    failed.sort_unstable();
    retry(&mut slots, failed);
    slots
        .into_iter()
        .map(|s| s.expect("every index is produced exactly once"))
        .collect()
}

impl GridIndex {
    /// Creates an index with the given cell size (dbu).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0`.
    pub fn new(cell_size: i64) -> Self {
        assert!(cell_size > 0, "cell size must be positive");
        GridIndex {
            cell: cell_size,
            cells: FxHashMap::default(),
            boxes: Vec::new(),
        }
    }

    /// Number of inserted items.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    fn cell_range(&self, bx: (i64, i64, i64, i64)) -> (i64, i64, i64, i64) {
        let (x_lo, y_lo, x_hi, y_hi) = bx;
        (
            x_lo.div_euclid(self.cell),
            y_lo.div_euclid(self.cell),
            x_hi.div_euclid(self.cell),
            y_hi.div_euclid(self.cell),
        )
    }

    /// Inserts an item with bounding range `(x_lo, y_lo, x_hi, y_hi)`.
    ///
    /// `id` is expected to be the next sequential id (`self.len()`); items
    /// are small integers so the pair enumeration can use dense bitsets.
    ///
    /// # Panics
    ///
    /// Panics if `id != self.len()` or the range is inverted.
    pub fn insert(&mut self, id: u32, bbox: (i64, i64, i64, i64)) {
        assert_eq!(id as usize, self.boxes.len(), "ids must be sequential");
        assert!(bbox.0 <= bbox.2 && bbox.1 <= bbox.3, "inverted bbox");
        let (cx_lo, cy_lo, cx_hi, cy_hi) = self.cell_range(bbox);
        for cx in cx_lo..=cx_hi {
            for cy in cy_lo..=cy_hi {
                self.cells.entry((cx, cy)).or_default().push(id);
            }
        }
        self.boxes.push(bbox);
    }

    /// The bounding range an item was inserted (or last updated) with.
    pub fn bbox(&self, id: u32) -> (i64, i64, i64, i64) {
        self.boxes[id as usize]
    }

    /// Hull of every item's bounding range (`None` when empty). Linear
    /// scan; callers clamping open-ended query regions pay it once per
    /// batch.
    pub fn bounds(&self) -> Option<(i64, i64, i64, i64)> {
        self.boxes
            .iter()
            .copied()
            .reduce(|a, b| (a.0.min(b.0), a.1.min(b.1), a.2.max(b.2), a.3.max(b.3)))
    }

    /// Moves an existing item to a new bounding range — the incremental
    /// maintenance primitive of the re-detection pipeline: after an
    /// end-to-end space insertion, only the boxes a cut shifts or
    /// stretches are re-bucketed; everything on the low side keeps its
    /// cells untouched. A no-op when the range (and thus the covered
    /// cell set) is unchanged.
    ///
    /// The per-cell id order after an update differs from a from-scratch
    /// build; queries and pair traversals are insensitive to it (queries
    /// dedup, traversals sort their output), which is the only contract
    /// callers get.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never inserted or the range is inverted.
    pub fn update(&mut self, id: u32, bbox: (i64, i64, i64, i64)) {
        assert!((id as usize) < self.boxes.len(), "unknown id {id}");
        assert!(bbox.0 <= bbox.2 && bbox.1 <= bbox.3, "inverted bbox");
        let old = self.boxes[id as usize];
        if old == bbox {
            return;
        }
        let old_range = self.cell_range(old);
        let new_range = self.cell_range(bbox);
        self.boxes[id as usize] = bbox;
        if old_range == new_range {
            return;
        }
        let (ox_lo, oy_lo, ox_hi, oy_hi) = old_range;
        for cx in ox_lo..=ox_hi {
            for cy in oy_lo..=oy_hi {
                // Invariant, not an error path: insert populated every cell of `old_range`.
                #[allow(clippy::expect_used)]
                let cell = self.cells.get_mut(&(cx, cy)).expect("inserted cell exists");
                #[allow(clippy::expect_used)] // Invariant: same insert-time coverage as above.
                let at = cell
                    .iter()
                    .position(|&i| i == id)
                    .expect("id present in covered cell");
                cell.swap_remove(at);
                if cell.is_empty() {
                    self.cells.remove(&(cx, cy));
                }
            }
        }
        let (nx_lo, ny_lo, nx_hi, ny_hi) = new_range;
        for cx in nx_lo..=nx_hi {
            for cy in ny_lo..=ny_hi {
                self.cells.entry((cx, cy)).or_default().push(id);
            }
        }
    }

    /// Ids of items whose bounding range intersects the query range
    /// (deduplicated, unsorted).
    ///
    /// Allocates one dense `bool` table per call — cheap enough for the
    /// extraction hot path; batch callers issuing many queries (the
    /// incremental re-detect's slab sweeps) should hold a
    /// [`QueryScratch`] and use [`GridIndex::query_into`] instead.
    pub fn query(&self, bbox: (i64, i64, i64, i64)) -> Vec<u32> {
        let (cx_lo, cy_lo, cx_hi, cy_hi) = self.cell_range(bbox);
        let mut out = Vec::new();
        let mut seen = vec![false; self.boxes.len()];
        for cx in cx_lo..=cx_hi {
            for cy in cy_lo..=cy_hi {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    for &id in ids {
                        if !seen[id as usize] && ranges_touch(self.boxes[id as usize], bbox) {
                            seen[id as usize] = true;
                            out.push(id);
                        }
                    }
                }
            }
        }
        out
    }

    /// [`GridIndex::query`] into caller-owned buffers: `out` receives the
    /// deduplicated ids, `scratch` carries the epoch-stamped dedup table
    /// across calls so a query costs O(cells touched + hits) instead of
    /// O(items indexed) — the difference between an incremental re-detect
    /// sweep being linear in the dirty region vs quadratic in the chip.
    pub fn query_into(
        &self,
        bbox: (i64, i64, i64, i64),
        scratch: &mut QueryScratch,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        if scratch.stamp.len() < self.boxes.len() {
            scratch.stamp.resize(self.boxes.len(), 0);
        }
        scratch.epoch = scratch.epoch.wrapping_add(1);
        if scratch.epoch == 0 {
            scratch.stamp.fill(0);
            scratch.epoch = 1;
        }
        let epoch = scratch.epoch;
        let (cx_lo, cy_lo, cx_hi, cy_hi) = self.cell_range(bbox);
        for cx in cx_lo..=cx_hi {
            for cy in cy_lo..=cy_hi {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    for &id in ids {
                        if scratch.stamp[id as usize] != epoch
                            && ranges_touch(self.boxes[id as usize], bbox)
                        {
                            scratch.stamp[id as usize] = epoch;
                            out.push(id);
                        }
                    }
                }
            }
        }
    }

    /// The cell owning the pair `(a, b)`: the one containing the min-corner
    /// of the intersection of their bounding ranges. Both boxes cover that
    /// cell, so both ids appear in its list and the owner reports the pair
    /// exactly once across the whole traversal.
    fn owner_cell(&self, a: usize, b: usize) -> (i64, i64) {
        let (ba, bb) = (self.boxes[a], self.boxes[b]);
        (
            ba.0.max(bb.0).div_euclid(self.cell),
            ba.1.max(bb.1).div_euclid(self.cell),
        )
    }

    /// Partitions the occupied cells into at most `count` contiguous bands
    /// of near-equal cell population (lexicographic cell order).
    pub fn shards(&self, count: usize) -> GridShards {
        let mut keys: Vec<(i64, i64)> = self.cells.keys().copied().collect();
        keys.sort_unstable();
        let count = count.clamp(1, keys.len().max(1));
        let bounds = (0..=count).map(|s| s * keys.len() / count).collect();
        GridShards { keys, bounds }
    }

    /// Streams the candidate pairs owned by shard `shard` of `shards`, in
    /// deterministic (cell, insertion) order. Each intersecting pair `(i, j)`
    /// with `i < j` is reported by exactly one shard, exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards.count()` or `shards` came from a
    /// different (or since-mutated) index.
    pub fn for_each_candidate_pair_in_shard(
        &self,
        shards: &GridShards,
        shard: usize,
        mut f: impl FnMut(u32, u32),
    ) {
        for key in &shards.keys[shards.bounds[shard]..shards.bounds[shard + 1]] {
            let ids = &self.cells[key];
            for (k, &i) in ids.iter().enumerate() {
                for &j in &ids[k + 1..] {
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    if ranges_touch(self.boxes[a as usize], self.boxes[b as usize])
                        && self.owner_cell(a as usize, b as usize) == *key
                    {
                        f(a, b);
                    }
                }
            }
        }
    }

    /// Streams all unordered intersecting pairs `(i, j)` with `i < j`,
    /// each exactly once, without materializing the pair set.
    pub fn for_each_candidate_pair(&self, mut f: impl FnMut(u32, u32)) {
        let shards = self.shards(1);
        for s in 0..shards.count() {
            self.for_each_candidate_pair_in_shard(&shards, s, &mut f);
        }
    }

    /// All unordered pairs `(i, j)` with `i < j` whose bounding ranges
    /// intersect. Each pair is reported exactly once.
    ///
    /// Materializing convenience over [`GridIndex::for_each_candidate_pair`];
    /// hot paths should prefer the streaming or sharded traversal.
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        self.for_each_candidate_pair(|a, b| pairs.push((a, b)));
        pairs
    }

    /// Sharded parallel pair traversal: applies `map` to every candidate
    /// pair and collects the `Some` results **in shard order**, so the
    /// output is bit-identical for every `parallelism` degree (`0` = one
    /// worker per CPU, `1` = run on the calling thread, `k` = at most `k`
    /// workers).
    ///
    /// Shards are handed to workers through an atomic cursor
    /// (self-balancing); each worker buffers its `(shard, results)` pairs
    /// locally and the buffers are stitched by shard index afterwards.
    pub fn par_collect_pairs<T, F>(&self, parallelism: usize, map: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u32, u32) -> Option<T> + Sync,
    {
        /// Minimum indexed items before auto parallelism spawns threads:
        /// below this the whole sweep takes well under a millisecond and
        /// thread spawn/join overhead dominates. Applies only to
        /// `parallelism = 0` — an explicit degree is honored — and is
        /// purely a scheduling decision: results are bit-identical.
        const SERIAL_FALLBACK_ITEMS: usize = 2048;
        let workers = resolve_workers(parallelism);
        if workers <= 1
            || self.cells.len() <= 1
            || (parallelism == 0 && self.len() < SERIAL_FALLBACK_ITEMS)
        {
            let mut out = Vec::new();
            self.for_each_candidate_pair(|a, b| out.extend(map(a, b)));
            return out;
        }
        // Over-shard relative to the worker count so one dense band cannot
        // serialize the traversal; merge in shard order.
        let shards = self.shards(workers * 4);
        par_map_indexed(
            shards.count(),
            workers,
            || (),
            |(), s| {
                let mut out = Vec::new();
                self.for_each_candidate_pair_in_shard(&shards, s, |a, b| out.extend(map(a, b)));
                out
            },
        )
        .into_iter()
        .flatten()
        .collect()
    }
}

fn ranges_touch(a: (i64, i64, i64, i64), b: (i64, i64, i64, i64)) -> bool {
    a.0 <= b.2 && b.0 <= a.2 && a.1 <= b.3 && b.1 <= a.3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_pairs(boxes: &[(i64, i64, i64, i64)]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..boxes.len() {
            for j in i + 1..boxes.len() {
                if ranges_touch(boxes[i], boxes[j]) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    fn random_boxes(seed: u64, n: usize) -> Vec<(i64, i64, i64, i64)> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(-1000..1000);
                let y = rng.gen_range(-1000..1000);
                let w = rng.gen_range(1..300);
                let h = rng.gen_range(1..300);
                (x, y, x + w, y + h)
            })
            .collect()
    }

    #[test]
    fn pairs_match_brute_force() {
        for seed in 0..20 {
            let boxes = random_boxes(seed, 60);
            let mut grid = GridIndex::new(128);
            for (i, b) in boxes.iter().enumerate() {
                grid.insert(i as u32, *b);
            }
            let mut got = grid.candidate_pairs();
            got.sort_unstable();
            let mut want = brute_pairs(&boxes);
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn streaming_reports_each_pair_exactly_once() {
        for seed in [3u64, 17, 40] {
            let boxes = random_boxes(seed, 80);
            let mut grid = GridIndex::new(100);
            for (i, b) in boxes.iter().enumerate() {
                grid.insert(i as u32, *b);
            }
            let mut counts: std::collections::HashMap<(u32, u32), usize> =
                std::collections::HashMap::new();
            grid.for_each_candidate_pair(|a, b| {
                assert!(a < b);
                *counts.entry((a, b)).or_default() += 1;
            });
            assert!(counts.values().all(|&c| c == 1), "seed {seed}");
            let mut got: Vec<_> = counts.into_keys().collect();
            got.sort_unstable();
            let mut want = brute_pairs(&boxes);
            want.sort_unstable();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn shards_partition_the_traversal() {
        let boxes = random_boxes(11, 120);
        let mut grid = GridIndex::new(96);
        for (i, b) in boxes.iter().enumerate() {
            grid.insert(i as u32, *b);
        }
        let serial = grid.candidate_pairs();
        for count in [1, 2, 3, 5, 8, 1000] {
            let shards = grid.shards(count);
            assert!(shards.count() >= 1);
            let mut sharded = Vec::new();
            for s in 0..shards.count() {
                grid.for_each_candidate_pair_in_shard(&shards, s, |a, b| sharded.push((a, b)));
            }
            // Shard-order concatenation equals the serial streaming order.
            assert_eq!(sharded, serial, "shard count {count}");
        }
    }

    #[test]
    fn par_collect_is_bit_identical_to_serial() {
        let boxes = random_boxes(29, 150);
        let mut grid = GridIndex::new(128);
        for (i, b) in boxes.iter().enumerate() {
            grid.insert(i as u32, *b);
        }
        let serial = grid.par_collect_pairs(1, |a, b| Some((a, b)));
        assert_eq!(serial, grid.candidate_pairs());
        for parallelism in [0usize, 2, 4, 8] {
            let par = grid.par_collect_pairs(parallelism, |a, b| Some((a, b)));
            assert_eq!(par, serial, "parallelism {parallelism}");
        }
        // Filtering maps stay deterministic too.
        let odd = |a: u32, b: u32| ((a + b) % 2 == 1).then_some((a, b));
        assert_eq!(
            grid.par_collect_pairs(4, odd),
            grid.par_collect_pairs(1, odd)
        );
    }

    #[test]
    fn query_finds_touching_items() {
        let mut grid = GridIndex::new(100);
        grid.insert(0, (0, 0, 50, 50));
        grid.insert(1, (500, 500, 600, 600));
        let mut hits = grid.query((40, 40, 60, 60));
        hits.sort_unstable();
        assert_eq!(hits, vec![0]);
        // Touching at a corner counts.
        assert_eq!(grid.query((50, 50, 70, 70)), vec![0]);
        assert!(grid.query((200, 200, 210, 210)).is_empty());
    }

    #[test]
    fn negative_coordinates_work() {
        let mut grid = GridIndex::new(64);
        grid.insert(0, (-500, -500, -400, -400));
        grid.insert(1, (-450, -450, -300, -300));
        assert_eq!(grid.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn rejects_nonsequential_ids() {
        let mut grid = GridIndex::new(10);
        grid.insert(3, (0, 0, 1, 1));
    }

    #[test]
    fn update_rebuckets_moved_items() {
        let boxes = random_boxes(51, 70);
        let mut grid = GridIndex::new(96);
        for (i, b) in boxes.iter().enumerate() {
            grid.insert(i as u32, *b);
        }
        // Shift the upper half as an end-to-end cut would, stretch one
        // straddler, leave the rest alone.
        let cut = 0i64;
        let width = 500i64;
        let moved: Vec<(i64, i64, i64, i64)> = boxes
            .iter()
            .map(|&(x0, y0, x1, y1)| {
                if x0 >= cut {
                    (x0 + width, y0, x1 + width, y1)
                } else if x1 > cut {
                    (x0, y0, x1 + width, y1)
                } else {
                    (x0, y0, x1, y1)
                }
            })
            .collect();
        for (i, b) in moved.iter().enumerate() {
            grid.update(i as u32, *b);
            assert_eq!(grid.bbox(i as u32), *b);
        }
        // The updated index answers pairs exactly like a fresh build.
        let mut fresh = GridIndex::new(96);
        for (i, b) in moved.iter().enumerate() {
            fresh.insert(i as u32, *b);
        }
        let mut got = grid.candidate_pairs();
        got.sort_unstable();
        let mut want = fresh.candidate_pairs();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(want, {
            let mut brute = brute_pairs(&moved);
            brute.sort_unstable();
            brute
        });
        // Queries agree too (as sets).
        for probe in [(-400, -400, 0, 0), (600, -200, 900, 400)] {
            let mut a = grid.query(probe);
            let mut b = fresh.query(probe);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn par_map_heals_a_transient_panic_per_degree() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for workers in [1usize, 2, 4, 8] {
            // Each index panics exactly on its first attempt for one
            // chosen victim; the retry pass must heal it to the same
            // output the fault-free map produces.
            let victim = 7usize;
            let attempts = AtomicUsize::new(0);
            let out = par_map_indexed(
                16,
                workers,
                || (),
                |(), i| {
                    if i == victim && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("transient worker fault");
                    }
                    i * i
                },
            );
            assert_eq!(
                out,
                (0..16).map(|i| i * i).collect::<Vec<_>>(),
                "workers {workers}"
            );
            assert_eq!(attempts.load(Ordering::SeqCst), 2, "workers {workers}");
        }
    }

    #[test]
    fn par_map_propagates_a_persistent_panic() {
        for workers in [1usize, 4] {
            let caught = std::panic::catch_unwind(|| {
                par_map_indexed(
                    8,
                    workers,
                    || (),
                    |(), i| {
                        if i == 3 {
                            panic!("persistent worker fault");
                        }
                        i
                    },
                )
            });
            let payload = caught.expect_err("second failure must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "persistent worker fault", "workers {workers}");
        }
    }

    #[test]
    fn par_map_reinits_state_after_a_panic() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A panicking item must not leave its half-mutated state visible
        // to later items: the worker re-inits. We detect reuse of a
        // poisoned state by marking it before the panic.
        let attempts = AtomicUsize::new(0);
        let out = par_map_indexed(
            12,
            1,
            || false, // state: "poisoned" marker
            |poisoned, i| {
                assert!(
                    !*poisoned,
                    "item {i} saw a state poisoned by a caught panic"
                );
                if i == 5 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    *poisoned = true;
                    panic!("poisoning fault");
                }
                i
            },
        );
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn update_same_bbox_is_noop_and_bounds_track_hull() {
        let mut grid = GridIndex::new(64);
        grid.insert(0, (0, 0, 10, 10));
        grid.insert(1, (100, 100, 120, 130));
        assert_eq!(grid.bounds(), Some((0, 0, 120, 130)));
        grid.update(0, (0, 0, 10, 10));
        grid.update(1, (200, 100, 220, 130));
        assert_eq!(grid.bounds(), Some((0, 0, 220, 130)));
        assert_eq!(grid.query((205, 105, 210, 110)), vec![1]);
        assert!(grid.query((100, 100, 120, 130)).is_empty());
    }
}
