use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A 2-D point in integer database units.
///
/// ```
/// use aapsm_geom::Point;
/// let p = Point::new(3, 4) + Point::new(1, -1);
/// assert_eq!(p, Point::new(4, 3));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Horizontal coordinate in dbu.
    pub x: i64,
    /// Vertical coordinate in dbu.
    pub y: i64,
}

/// The orientation of an ordered point triple `(a, b, c)`.
///
/// Returned by [`Point::orient`]; exact (computed in `i128`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// `c` lies strictly left of the directed line `a -> b`.
    CounterClockwise,
    /// `a`, `b`, `c` are collinear.
    Collinear,
    /// `c` lies strictly right of the directed line `a -> b`.
    Clockwise,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Exact 2-D cross product `self × other` in `i128`.
    ///
    /// ```
    /// use aapsm_geom::Point;
    /// assert_eq!(Point::new(1, 0).cross(Point::new(0, 1)), 1);
    /// ```
    pub fn cross(self, other: Point) -> i128 {
        self.x as i128 * other.y as i128 - self.y as i128 * other.x as i128
    }

    /// Exact dot product in `i128`.
    pub fn dot(self, other: Point) -> i128 {
        self.x as i128 * other.x as i128 + self.y as i128 * other.y as i128
    }

    /// Squared Euclidean norm in `i128` (exact).
    pub fn norm_sq(self) -> i128 {
        self.dot(self)
    }

    /// Squared Euclidean distance to `other` (exact).
    pub fn dist_sq(self, other: Point) -> i128 {
        (other - self).norm_sq()
    }

    /// Exact orientation of the triple `(a, b, c)`.
    ///
    /// ```
    /// use aapsm_geom::{Orientation, Point};
    /// let o = Point::orient(Point::new(0, 0), Point::new(2, 0), Point::new(1, 1));
    /// assert_eq!(o, Orientation::CounterClockwise);
    /// ```
    pub fn orient(a: Point, b: Point, c: Point) -> Orientation {
        let v = (b - a).cross(c - a);
        match v.cmp(&0) {
            std::cmp::Ordering::Greater => Orientation::CounterClockwise,
            std::cmp::Ordering::Equal => Orientation::Collinear,
            std::cmp::Ordering::Less => Orientation::Clockwise,
        }
    }

    /// The midpoint of the segment `self -> other`, rounded toward negative
    /// infinity on each axis.
    ///
    /// Used to place overlap nodes of the phase conflict graph on the
    /// straight line between two shifter nodes.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(
            ((self.x as i128 + other.x as i128).div_euclid(2)) as i64,
            ((self.y as i128 + other.y as i128).div_euclid(2)) as i64,
        )
    }

    /// Pseudo-angle comparator key: orders directions counter-clockwise
    /// starting from the positive x axis, exactly, without trigonometry.
    ///
    /// The returned key orders first by half-plane (upper half, including the
    /// positive x axis, precedes the lower half), ties within a half-plane
    /// being broken by the exact cross product at comparison time — see
    /// [`Point::cmp_angle`].
    fn angle_half(self) -> u8 {
        debug_assert!(self.x != 0 || self.y != 0, "zero vector has no angle");
        // Half 0: angle in [0, pi): y > 0, or y == 0 && x > 0.
        if self.y > 0 || (self.y == 0 && self.x > 0) {
            0
        } else {
            1
        }
    }

    /// Compares two direction vectors by counter-clockwise angle from the
    /// positive x axis. Exact; both vectors must be non-zero.
    ///
    /// Collinear same-direction vectors compare equal.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either vector is zero.
    pub fn cmp_angle(self, other: Point) -> std::cmp::Ordering {
        let (ha, hb) = (self.angle_half(), other.angle_half());
        ha.cmp(&hb).then_with(|| 0i128.cmp(&self.cross(other)))
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cross_and_dot_are_exact_at_extremes() {
        let a = Point::new(i64::MAX / 2, i64::MAX / 2);
        let b = Point::new(-(i64::MAX / 2), i64::MAX / 2);
        // Would overflow i64; must be exact in i128.
        assert!(a.cross(b) > 0);
        assert_eq!(a.dot(b), 0);
    }

    #[test]
    fn orient_basic() {
        let o = Point::new(0, 0);
        let x = Point::new(10, 0);
        assert_eq!(
            Point::orient(o, x, Point::new(5, 1)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            Point::orient(o, x, Point::new(5, -1)),
            Orientation::Clockwise
        );
        assert_eq!(
            Point::orient(o, x, Point::new(20, 0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn midpoint_rounds_consistently() {
        assert_eq!(
            Point::new(0, 0).midpoint(Point::new(3, 3)),
            Point::new(1, 1)
        );
        assert_eq!(
            Point::new(-1, -1).midpoint(Point::new(0, 0)),
            Point::new(-1, -1)
        );
        assert_eq!(
            Point::new(2, 4).midpoint(Point::new(4, 8)),
            Point::new(3, 6)
        );
    }

    #[test]
    fn angle_order_is_ccw_from_positive_x() {
        let dirs = [
            Point::new(1, 0),   // 0
            Point::new(1, 1),   // 45
            Point::new(0, 1),   // 90
            Point::new(-1, 1),  // 135
            Point::new(-1, 0),  // 180
            Point::new(-1, -1), // 225
            Point::new(0, -1),  // 270
            Point::new(1, -1),  // 315
        ];
        for w in dirs.windows(2) {
            assert_eq!(w[0].cmp_angle(w[1]), Ordering::Less, "{} !< {}", w[0], w[1]);
        }
        // Same direction, different magnitude: equal.
        assert_eq!(
            Point::new(2, 2).cmp_angle(Point::new(5, 5)),
            Ordering::Equal
        );
        // Opposite directions are distinct.
        assert_eq!(
            Point::new(1, 1).cmp_angle(Point::new(-1, -1)),
            Ordering::Less
        );
    }

    #[test]
    fn dist_sq_matches_hand_value() {
        assert_eq!(Point::new(0, 0).dist_sq(Point::new(3, 4)), 25);
    }
}
