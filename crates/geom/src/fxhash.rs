//! A deterministic, allocation-free multiplicative hasher (FxHash, the
//! rustc-internal scheme) for the spatial hot paths.
//!
//! The std default `SipHash` is DoS-resistant but several times slower on
//! the small fixed-width keys these crates hash by the million — grid cell
//! coordinates and layout points. Nothing here hashes attacker-controlled
//! data, and a fixed (non-random) state additionally makes every map/set
//! iteration order deterministic across runs.

use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (golden-ratio derived, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state. One `u64`, mixed per written word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
}

/// A `BuildHasher` with fixed state: fast and fully deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m1: FxHashMap<(i64, i64), u32> = FxHashMap::default();
        let mut m2: FxHashMap<(i64, i64), u32> = FxHashMap::default();
        for i in 0..1000i64 {
            m1.insert((i, -i), i as u32);
            m2.insert((i, -i), i as u32);
        }
        let k1: Vec<_> = m1.keys().copied().collect();
        let k2: Vec<_> = m2.keys().copied().collect();
        assert_eq!(k1, k2, "fixed-state hashing must iterate identically");
    }

    #[test]
    fn distinguishes_close_keys() {
        let mut s: FxHashSet<(i64, i64)> = FxHashSet::default();
        for x in -50..50i64 {
            for y in -50..50i64 {
                s.insert((x, y));
            }
        }
        assert_eq!(s.len(), 100 * 100);
    }
}
