//! SVG rendering of AAPSM layouts, shifters, conflicts and phase
//! assignments.
//!
//! Regenerates the visual content of the paper's figures: Figure 1
//! (an unassignable cycle of phase dependencies), Figure 2 (phase conflict
//! graph vs feature graph on one layout) and Figure 5 (an end-to-end space
//! clearing several conflicts). Pure string building; no dependencies
//! beyond the workspace.
//!
//! # Example
//!
//! ```
//! use aapsm_layout::{fixtures, DesignRules, extract_phase_geometry};
//! use aapsm_render::{render_layout, RenderOptions};
//!
//! let rules = DesignRules::default();
//! let layout = fixtures::gate_over_strap(&rules);
//! let geom = extract_phase_geometry(&layout, &rules);
//! let svg = render_layout(&layout, Some(&geom), None, &RenderOptions::default());
//! assert!(svg.starts_with("<svg"));
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use aapsm_core::{Conflict, ConflictGraph, ConstraintKind};
use aapsm_geom::Rect;
use aapsm_layout::{Layout, PhaseAssignment, PhaseGeometry};
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Debug)]
pub struct RenderOptions {
    /// Output pixel width (height follows the aspect ratio).
    pub width_px: u32,
    /// Margin around the drawing, in layout dbu.
    pub margin_dbu: i64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width_px: 900,
            margin_dbu: 600,
        }
    }
}

struct Canvas {
    svg: String,
    scale: f64,
    x0: i64,
    y1: i64, // top (svg y grows downward)
}

impl Canvas {
    fn new(bbox: Rect, opts: &RenderOptions) -> Canvas {
        let bbox = bbox.inflate(opts.margin_dbu);
        let w = bbox.width() as f64;
        let h = bbox.height() as f64;
        let scale = opts.width_px as f64 / w;
        let height_px = (h * scale).ceil() as u32;
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">",
            opts.width_px, height_px, opts.width_px, height_px
        );
        let _ = writeln!(svg, "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>");
        Canvas {
            svg,
            scale,
            x0: bbox.x_lo(),
            y1: bbox.y_hi(),
        }
    }

    fn px(&self, x: i64, y: i64) -> (f64, f64) {
        (
            (x - self.x0) as f64 * self.scale,
            (self.y1 - y) as f64 * self.scale,
        )
    }

    fn rect(&mut self, r: &Rect, fill: &str, stroke: &str, opacity: f64) {
        let (x, y) = self.px(r.x_lo(), r.y_hi());
        let _ = writeln!(
            self.svg,
            "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"{fill}\" stroke=\"{stroke}\" stroke-width=\"0.5\" fill-opacity=\"{opacity}\"/>",
            x,
            y,
            r.width() as f64 * self.scale,
            r.height() as f64 * self.scale
        );
    }

    fn line(&mut self, a: (i64, i64), b: (i64, i64), stroke: &str, width: f64) {
        let (x1, y1) = self.px(a.0, a.1);
        let (x2, y2) = self.px(b.0, b.1);
        let _ = writeln!(
            self.svg,
            "<line x1=\"{x1:.2}\" y1=\"{y1:.2}\" x2=\"{x2:.2}\" y2=\"{y2:.2}\" stroke=\"{stroke}\" stroke-width=\"{width}\"/>"
        );
    }

    fn circle(&mut self, c: (i64, i64), r_px: f64, fill: &str) {
        let (cx, cy) = self.px(c.0, c.1);
        let _ = writeln!(
            self.svg,
            "<circle cx=\"{cx:.2}\" cy=\"{cy:.2}\" r=\"{r_px}\" fill=\"{fill}\"/>"
        );
    }

    fn finish(mut self) -> String {
        self.svg.push_str("</svg>\n");
        self.svg
    }
}

fn overall_bbox(layout: &Layout, geom: Option<&PhaseGeometry>) -> Rect {
    let mut bbox = layout.bbox().unwrap_or_else(|| Rect::new(0, 0, 1, 1));
    if let Some(g) = geom {
        for s in &g.shifters {
            bbox = bbox.hull(&s.rect);
        }
    }
    bbox
}

/// Renders a layout; optionally its shifters (colored by phase when an
/// assignment is given) and conflict markers.
pub fn render_layout(
    layout: &Layout,
    geom: Option<&PhaseGeometry>,
    phases: Option<&PhaseAssignment>,
    opts: &RenderOptions,
) -> String {
    let mut c = Canvas::new(overall_bbox(layout, geom), opts);
    if let Some(g) = geom {
        for (si, s) in g.shifters.iter().enumerate() {
            let fill = match phases.map(|p| p.phase[si]) {
                Some(0) => "#7cb2e8", // 0 degrees
                Some(_) => "#e8897c", // 180 degrees
                None => "#c9c9c9",
            };
            c.rect(&s.rect, fill, "#888888", 0.55);
        }
    }
    for r in layout.rects() {
        c.rect(r, "#222222", "#000000", 0.95);
    }
    c.finish()
}

/// Renders a layout with its conflict set highlighted (red markers on the
/// conflicting shifter pairs) — the Figure 1 / Figure 5 style.
pub fn render_conflicts(
    layout: &Layout,
    geom: &PhaseGeometry,
    conflicts: &[Conflict],
    opts: &RenderOptions,
) -> String {
    let mut c = Canvas::new(overall_bbox(layout, Some(geom)), opts);
    for s in &geom.shifters {
        c.rect(&s.rect, "#c9c9c9", "#888888", 0.5);
    }
    for r in layout.rects() {
        c.rect(r, "#222222", "#000000", 0.95);
    }
    for conflict in conflicts {
        if let ConstraintKind::Overlap(oi) = conflict.constraint {
            let o = &geom.overlaps[oi];
            let a = geom.shifters[o.a].rect.center();
            let b = geom.shifters[o.b].rect.center();
            c.line((a.x, a.y), (b.x, b.y), "#d62728", 2.5);
            c.circle((a.x, a.y), 4.0, "#d62728");
            c.circle((b.x, b.y), 4.0, "#d62728");
        }
    }
    c.finish()
}

/// Renders a conflict graph over its layout — the Figure 2 comparison
/// (call once with the PCG and once with the feature graph).
pub fn render_graph(
    layout: &Layout,
    geom: &PhaseGeometry,
    cg: &ConflictGraph,
    opts: &RenderOptions,
) -> String {
    let mut c = Canvas::new(overall_bbox(layout, Some(geom)), opts);
    for s in &geom.shifters {
        c.rect(&s.rect, "#dddddd", "#aaaaaa", 0.5);
    }
    for r in layout.rects() {
        c.rect(r, "#bbbbbb", "#999999", 0.8);
    }
    for e in cg.graph.alive_edges() {
        let (u, v) = cg.graph.endpoints(e);
        let (pu, pv) = (cg.graph.pos(u), cg.graph.pos(v));
        let stroke = if cg.is_flank(e) { "#1f77b4" } else { "#2ca02c" };
        c.line((pu.x, pu.y), (pv.x, pv.y), stroke, 1.5);
    }
    for n in cg.graph.nodes() {
        let p = cg.graph.pos(n);
        c.circle((p.x, p.y), 3.0, "#333333");
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_core::{build_phase_conflict_graph, detect_conflicts, DetectConfig};
    use aapsm_layout::{extract_phase_geometry, fixtures, DesignRules};

    #[test]
    fn renders_are_wellformed_svg() {
        let rules = DesignRules::default();
        let layout = fixtures::strap_under_bus(4, &rules);
        let geom = extract_phase_geometry(&layout, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let cg = build_phase_conflict_graph(&geom);
        let opts = RenderOptions::default();
        for svg in [
            render_layout(&layout, Some(&geom), None, &opts),
            render_conflicts(&layout, &geom, &report.conflicts, &opts),
            render_graph(&layout, &geom, &cg, &opts),
        ] {
            assert!(svg.starts_with("<svg"));
            assert!(svg.trim_end().ends_with("</svg>"));
            assert!(svg.matches("<rect").count() > 4);
        }
    }

    #[test]
    fn phases_change_fill_colors() {
        let rules = DesignRules::default();
        let layout = fixtures::wire_row(3, 600);
        let geom = extract_phase_geometry(&layout, &rules);
        let phases = aapsm_layout::check_assignable(&geom).unwrap();
        let svg = render_layout(
            &layout,
            Some(&geom),
            Some(&phases),
            &RenderOptions::default(),
        );
        assert!(svg.contains("#7cb2e8") && svg.contains("#e8897c"));
    }

    #[test]
    fn empty_layout_renders() {
        let svg = render_layout(&Layout::new(), None, None, &RenderOptions::default());
        assert!(svg.starts_with("<svg"));
    }
}
