//! Benchmark harness for the DATE 2005 bright-field AAPSM reproduction.
//!
//! The binaries regenerate the paper's tables ([`table1`
//! bin](../src/bin/table1.rs): conflict-detection QoR and gadget runtimes;
//! [`table2` bin](../src/bin/table2.rs): layout modification), and the
//! criterion benches cover the runtime claims and the ablations listed in
//! DESIGN.md. This library holds the shared plumbing: design preparation
//! and measurement helpers.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use aapsm_core::{
    detect_conflicts, detect_greedy, DetectConfig, DetectReport, GadgetKind, GraphKind, GreedyKind,
    TJoinMethod,
};
use aapsm_layout::synth::{generate, BenchDesign};
use aapsm_layout::{extract_phase_geometry, DesignRules, Layout, PhaseGeometry};
use std::time::Duration;

/// A generated benchmark design with its extracted phase geometry.
pub struct PreparedDesign {
    /// Design name (table row label).
    pub name: &'static str,
    /// The generated layout.
    pub layout: Layout,
    /// Extracted features/shifters/overlaps.
    pub geom: PhaseGeometry,
}

/// Generates and extracts one suite design.
pub fn prepare(design: &BenchDesign, rules: &DesignRules) -> PreparedDesign {
    let layout = generate(&design.params, rules);
    let geom = extract_phase_geometry(&layout, rules);
    PreparedDesign {
        name: design.name,
        layout,
        geom,
    }
}

/// One Table 1 row: QoR of all four detection schemes plus the matching
/// runtimes with optimized and generalized gadgets.
pub struct Table1Row {
    /// Design name.
    pub name: &'static str,
    /// Polygon count.
    pub polygons: usize,
    /// Conflicts from optimal bipartization only, PCG representation
    /// (planarization cost not counted) — column NP.
    pub np: usize,
    /// Full flow on the feature graph — column FG.
    pub fg: usize,
    /// Full flow on the phase conflict graph — column PCG.
    pub pcg: usize,
    /// Literal greedy spanning-forest baseline — column GB.
    pub gb: usize,
    /// Parity-aware greedy (GB⁺, ours).
    pub gb_parity: usize,
    /// Bipartization wall time with optimized (≤3) gadgets.
    pub o_gadget_time: Duration,
    /// Bipartization wall time with generalized gadgets.
    pub g_gadget_time: Duration,
}

/// Runs all Table 1 measurements on one design.
pub fn table1_row(p: &PreparedDesign) -> Table1Row {
    let pcg_opt = detect_conflicts(
        &p.geom,
        &DetectConfig {
            tjoin: TJoinMethod::Gadget(GadgetKind::Optimized),
            ..DetectConfig::default()
        },
    );
    let pcg_gen = detect_conflicts(
        &p.geom,
        &DetectConfig {
            tjoin: TJoinMethod::Gadget(GadgetKind::default()),
            ..DetectConfig::default()
        },
    );
    let fg = detect_conflicts(
        &p.geom,
        &DetectConfig {
            graph: GraphKind::Feature,
            ..DetectConfig::default()
        },
    );
    let gb = detect_greedy(&p.geom, GraphKind::PhaseConflict, GreedyKind::Spanning);
    let gbp = detect_greedy(&p.geom, GraphKind::PhaseConflict, GreedyKind::Parity);
    Table1Row {
        name: p.name,
        polygons: p.layout.len(),
        np: pcg_gen.stats.bipartize_conflicts + p.geom.direct_conflicts.len(),
        fg: fg.conflict_count(),
        pcg: pcg_gen.conflict_count(),
        gb: gb.conflict_count(),
        gb_parity: gbp.conflict_count(),
        o_gadget_time: pcg_opt.stats.bipartize_time,
        g_gadget_time: pcg_gen.stats.bipartize_time,
    }
}

/// Detection with a specific T-join method (for the runtime benches).
pub fn detect_with(geom: &PhaseGeometry, tjoin: TJoinMethod) -> DetectReport {
    detect_conflicts(
        geom,
        &DetectConfig {
            tjoin,
            ..DetectConfig::default()
        },
    )
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_layout::synth::standard_suite;

    #[test]
    fn table1_row_on_smallest_design() {
        let rules = DesignRules::default();
        let suite = standard_suite();
        let p = prepare(&suite[0], &rules);
        let row = table1_row(&p);
        assert!(row.polygons >= 1000);
        // The paper's ordering claims.
        assert!(row.np <= row.pcg, "NP <= PCG");
        assert!(row.pcg <= row.fg, "PCG <= FG");
        assert!(row.gb >= row.gb_parity, "GB literal over-deletes");
        assert!(row.gb_parity >= row.pcg, "greedy never beats optimal");
    }
}
