//! Regenerates the Figure 2 comparison: phase conflict graph vs feature
//! graph for the same layouts — node, edge and crossing counts, plus SVG
//! drawings of both graphs on a small fixture.
//!
//! Usage: `cargo run -p aapsm-bench --bin fig2 --release [-- out_dir]`

use aapsm_bench::prepare;
use aapsm_core::{build_feature_graph, build_phase_conflict_graph};
use aapsm_layout::synth::standard_suite;
use aapsm_layout::{extract_phase_geometry, fixtures, DesignRules};
use aapsm_render::{render_graph, RenderOptions};

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/figures".into());
    let rules = DesignRules::default();
    println!(
        "{:<9} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "design", "PCG n", "PCG e", "PCG x", "FG n", "FG e", "FG x"
    );
    println!("{}", "-".repeat(68));
    for d in standard_suite().into_iter().take(4) {
        let p = prepare(&d, &rules);
        let pcg = build_phase_conflict_graph(&p.geom).stats();
        let fg = build_feature_graph(&p.geom).stats();
        println!(
            "{:<9} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
            p.name, pcg.nodes, pcg.edges, pcg.crossings, fg.nodes, fg.edges, fg.crossings
        );
    }
    println!("(n = nodes, e = edges, x = straight-line crossings; the paper's Figure 2 point\n is that the PCG avoids the feature graph's detours and crossings)");

    // Figure 2 drawings on the bus fixture.
    let layout = fixtures::strap_under_bus(4, &rules);
    let geom = extract_phase_geometry(&layout, &rules);
    let pcg = build_phase_conflict_graph(&geom);
    let fg = build_feature_graph(&geom);
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let opts = RenderOptions::default();
    for (name, cg) in [("fig2_pcg.svg", &pcg), ("fig2_fg.svg", &fg)] {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, render_graph(&layout, &geom, cg, &opts)).expect("write svg");
        println!("wrote {path}");
    }
}
