//! Regenerates Table 1: AAPSM conflict detection QoR and matching runtime.
//!
//! Columns follow the paper: NP (bipartization only, PCG), FG (full flow,
//! feature graph), PCG (full flow, phase conflict graph — the proposal),
//! GB (greedy spanning baseline, literal) plus our parity-aware GB⁺, and
//! the matching runtimes with optimized vs generalized gadgets.
//!
//! Usage: `cargo run -p aapsm-bench --bin table1 --release [-- --full]`
//! (`--full` includes the two largest designs, up to the ~160 K-polygon
//! full chip).

use aapsm_bench::{ms, prepare, table1_row};
use aapsm_layout::synth::standard_suite;
use aapsm_layout::DesignRules;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let rules = DesignRules::default();
    let suite = standard_suite();
    let designs: Vec<_> = if full {
        suite
    } else {
        suite.into_iter().take(6).collect()
    };
    println!(
        "{:<9} {:>9} | {:>6} {:>6} {:>6} {:>8} {:>8} | {:>12} {:>12} {:>7}",
        "design", "polygons", "NP", "FG", "PCG", "GB", "GB+", "O-gad (ms)", "G-gad (ms)", "gain"
    );
    println!("{}", "-".repeat(104));
    let mut o_total = 0.0;
    let mut g_total = 0.0;
    for d in &designs {
        let p = prepare(d, &rules);
        let row = table1_row(&p);
        let gain = if row.o_gadget_time.as_secs_f64() > 0.0 {
            100.0 * (1.0 - row.g_gadget_time.as_secs_f64() / row.o_gadget_time.as_secs_f64())
        } else {
            0.0
        };
        o_total += row.o_gadget_time.as_secs_f64();
        g_total += row.g_gadget_time.as_secs_f64();
        println!(
            "{:<9} {:>9} | {:>6} {:>6} {:>6} {:>8} {:>8} | {:>12} {:>12} {:>6.1}%",
            row.name,
            row.polygons,
            row.np,
            row.fg,
            row.pcg,
            row.gb,
            row.gb_parity,
            ms(row.o_gadget_time),
            ms(row.g_gadget_time),
            gain
        );
    }
    println!("{}", "-".repeat(104));
    println!(
        "average matching-runtime gain of generalized over optimized gadgets: {:.1}%",
        100.0 * (1.0 - g_total / o_total.max(1e-12))
    );
    println!(
        "\npaper claims to check: NP <= PCG <= FG << GB; PCG close to NP; G-gadget ~16% faster."
    );
}
