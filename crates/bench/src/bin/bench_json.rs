//! Machine-readable perf tracking: times the detection hot path on the
//! parallel-scaling suite and writes `BENCH_bipartize_scaling.json`.
//!
//! Run with `cargo run --release -p aapsm-bench --bin bench_json`. Each
//! design is measured at three stages — conflict-graph build, greedy
//! planarization, and the dual-T-join bipartization the paper's Table 1
//! times — with the bipartization taken both serially (`parallelism = 1`)
//! and on all available cores (`parallelism = 0`). The two bipartizations
//! are asserted to produce byte-identical deleted-edge sets, so the
//! speedup column can never come from a wrong answer. JSON is emitted by
//! hand: the build environment has no registry access for serde.

use aapsm_core::PlanarizeOrder;
use aapsm_core::{
    bipartize_with, build_conflict_graph, planarize_graph, BipartizeMethod, GraphKind, TJoinMethod,
};
use aapsm_layout::synth::scaling_suite;
use aapsm_layout::{extract_phase_geometry, DesignRules};
use std::time::Instant;

/// Fastest of `reps` runs, in seconds (min damps scheduler noise better
/// than the mean on small samples).
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let rules = DesignRules::default();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = 3;
    let mut rows_json = Vec::new();

    for design in scaling_suite() {
        eprintln!("measuring {} ...", design.name);
        let layout = aapsm_layout::synth::generate(&design.params, &rules);
        let geom = extract_phase_geometry(&layout, &rules);

        let (build_s, cg0) = time_best(reps, || {
            build_conflict_graph(&geom, GraphKind::PhaseConflict)
        });
        // Pre-clone the inputs so planarize_ms times planarization alone,
        // not the graph deep-clone.
        let mut planarize_inputs: Vec<_> = (0..reps).map(|_| cg0.clone()).collect();
        let mut planarize_s = f64::INFINITY;
        for cg in &mut planarize_inputs {
            let t = Instant::now();
            planarize_graph(cg, PlanarizeOrder::MinWeightFirst);
            planarize_s = planarize_s.min(t.elapsed().as_secs_f64());
        }
        let cg = planarize_inputs.pop().expect("reps >= 1");
        let method = BipartizeMethod::OptimalDual {
            tjoin: TJoinMethod::default(),
            blocks: false,
        };
        let (serial_s, serial) = time_best(reps, || bipartize_with(&cg.graph, method, 1));
        let (parallel_s, parallel) = time_best(reps, || bipartize_with(&cg.graph, method, 0));
        assert_eq!(
            serial.deleted, parallel.deleted,
            "{}: parallel bipartization diverged from serial",
            design.name
        );

        rows_json.push(format!(
            concat!(
                "    {{\"design\": \"{}\", \"rows\": {}, \"polygons\": {}, ",
                "\"graph_nodes\": {}, \"graph_edges\": {}, \"conflicts\": {}, ",
                "\"build_ms\": {:.3}, \"planarize_ms\": {:.3}, ",
                "\"bipartize_serial_ms\": {:.3}, \"bipartize_parallel_ms\": {:.3}, ",
                "\"speedup\": {:.3}, \"identical\": true}}"
            ),
            design.name,
            design.params.rows,
            layout.len(),
            cg.graph.node_count(),
            cg.graph.alive_edge_count(),
            serial.deleted.len(),
            build_s * 1e3,
            planarize_s * 1e3,
            serial_s * 1e3,
            parallel_s * 1e3,
            serial_s / parallel_s.max(1e-12),
        ));
        eprintln!(
            "  bipartize: serial {:.2} ms, parallel {:.2} ms ({:.2}x on {} workers)",
            serial_s * 1e3,
            parallel_s * 1e3,
            serial_s / parallel_s.max(1e-12),
            workers
        );
    }

    let json = format!
(
        "{{\n  \"bench\": \"bipartize_scaling\",\n  \"workers\": {},\n  \"reps\": {},\n  \"designs\": [\n{}\n  ]\n}}\n",
        workers,
        reps,
        rows_json.join(",\n")
    );
    let path = "BENCH_bipartize_scaling.json";
    std::fs::write(path, &json).expect("write bench JSON");
    println!("{json}");
    eprintln!("wrote {path}");
}
