//! Machine-readable perf tracking for the detection pipeline.
//!
//! Run with `cargo run --release -p aapsm-bench --bin bench_json`. Writes
//! two JSON snapshots (by hand — the build environment has no registry
//! access for serde):
//!
//! * `BENCH_bipartize_scaling.json` — the historical back-end view:
//!   conflict-graph build, greedy planarization, and serial-vs-parallel
//!   dual-T-join bipartization (the stage the paper's Table 1 times).
//! * `BENCH_detect_pipeline.json` — the full front-to-back view: every
//!   pipeline stage (extract / build / planarize / face_dual /
//!   bipartize) timed serially (`parallelism = 1`) and on all available
//!   cores (`parallelism = 0`), on the 1×/4×/16×/64× scaling suite. The
//!   `face_dual` stage isolates the per-component parallel face trace +
//!   dual build inside bipartization and is excluded from the totals
//!   (bipartize already contains it). The `correction_plan` stage times
//!   the decomposed weighted-set-cover planner serial vs parallel
//!   (identical plans asserted) with plan-weight and proven-optimal
//!   component counters; it is kept out of the detection totals so they
//!   stay comparable across snapshots.
//!
//! Every parallel stage output is asserted equal to its serial output
//! before a row is written, so a speedup column can never come from a
//! wrong answer; the `identical` fields record that the assertion ran.

use aapsm_core::{
    bipartize_with, build_conflict_graph, build_conflict_graph_par, build_conflict_graph_tiled,
    detect_conflicts, detect_hier, plan_correction, planarize_graph_par, tjoin_method_census,
    BipartizeMethod, CorrectionOptions, DetectConfig, GraphKind, RedetectEngine, TJoinMethod,
    TileConfig,
};
use aapsm_core::{ConflictGraph, PlanarizeOrder};
use aapsm_geom::Axis;
use aapsm_layout::synth::{scaling_suite, SynthParams};
use aapsm_layout::{
    apply_cuts, extract_phase_geometry, extract_phase_geometry_par, Cell, DesignRules, HierLayout,
    Instance, Layout, Orient, Placement,
};
use aapsm_service::{DetectionService, LoadLadder, Request, ResponseKind, ServiceConfig};
use std::time::Instant;

/// Fastest of `reps` runs, in seconds (min damps scheduler noise better
/// than the mean on small samples).
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

/// Times planarization over pre-cloned inputs (so the clone cost stays out
/// of the measurement) and returns the fastest time, the removed set and
/// the final graph of the last run.
fn time_planarize(
    reps: usize,
    cg0: &ConflictGraph,
    parallelism: usize,
) -> (
    f64,
    Vec<aapsm_core::ConflictGraph>,
    Vec<aapsm_graph::EdgeId>,
) {
    let mut inputs: Vec<_> = (0..reps).map(|_| cg0.clone()).collect();
    let mut best = f64::INFINITY;
    let mut removed = Vec::new();
    for cg in &mut inputs {
        let t = Instant::now();
        removed = planarize_graph_par(cg, PlanarizeOrder::MinWeightFirst, parallelism);
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, inputs, removed)
}

/// One stage's serial/parallel measurement, in milliseconds.
struct Stage {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
}

impl Stage {
    /// From seconds as returned by [`time_best`].
    fn from_secs(name: &'static str, serial_s: f64, parallel_s: f64) -> Stage {
        Stage {
            name,
            serial_ms: serial_s * 1e3,
            parallel_ms: parallel_s * 1e3,
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "\"{}\": {{\"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, ",
                "\"speedup\": {:.3}, \"identical\": true}}"
            ),
            self.name,
            self.serial_ms,
            self.parallel_ms,
            self.serial_ms / self.parallel_ms.max(1e-12),
        )
    }
}

fn main() {
    // Fault-injection hooks must be compiled out of the measured binary:
    // release timings may not include the probes. A debug run still
    // works, but its numbers are flagged as non-representative.
    #[cfg(not(debug_assertions))]
    assert!(
        !aapsm_fault::enabled(),
        "fault-injection hooks are live in a release benchmark build"
    );
    if aapsm_fault::enabled() {
        eprintln!("warning: debug build; fault hooks are live and timings are not representative");
    }
    let rules = DesignRules::default();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = 5;
    let mut legacy_rows = Vec::new();
    let mut pipeline_rows = Vec::new();

    for design in scaling_suite() {
        eprintln!("measuring {} ...", design.name);
        let layout = aapsm_layout::synth::generate(&design.params, &rules);

        // ---- Stage 1: phase-geometry extraction. ----
        let (extract_serial_s, geom) = time_best(reps, || extract_phase_geometry(&layout, &rules));
        let (extract_parallel_s, geom_par) =
            time_best(reps, || extract_phase_geometry_par(&layout, &rules, 0));
        assert_eq!(
            geom, geom_par,
            "{}: parallel extraction diverged from serial",
            design.name
        );

        // ---- Stage 2: conflict-graph build. ----
        let (build_serial_s, cg0) = time_best(reps, || {
            build_conflict_graph(&geom, GraphKind::PhaseConflict)
        });
        // The pipeline entry point: on a single-core runner this resolves
        // to the serial builders (tiling buys nothing without a second
        // worker), on multi-core it runs the tile-sharded build.
        let (build_parallel_s, cg_par) = time_best(reps, || {
            build_conflict_graph_par(&geom, GraphKind::PhaseConflict, 0)
        });
        assert_eq!(
            cg0, cg_par,
            "{}: parallel build diverged from serial",
            design.name
        );
        // Exercise the tile-sharded path explicitly regardless of core
        // count, so identical:true always covers the stitch.
        let tile_cfg = TileConfig {
            tiles: 3,
            parallelism: 0,
        };
        let cg_tiled = build_conflict_graph_tiled(&geom, GraphKind::PhaseConflict, &tile_cfg);
        assert_eq!(
            cg0, cg_tiled,
            "{}: tile-sharded build diverged from serial",
            design.name
        );

        // ---- Stage 3: planarization (parallel crossing sweep). ----
        let (planarize_serial_s, mut serial_out, removed_serial) = time_planarize(reps, &cg0, 1);
        let (planarize_parallel_s, parallel_out, removed_parallel) = time_planarize(reps, &cg0, 0);
        assert_eq!(
            removed_serial, removed_parallel,
            "{}: parallel planarization diverged from serial",
            design.name
        );
        assert_eq!(serial_out.last(), parallel_out.last());
        let cg = serial_out.pop().expect("reps >= 1");

        // ---- Stage 4: face trace + dual build (the planar-embedding
        // front half of bipartization, parallelized per component). ----
        let (face_dual_serial_s, serial_embedding) = time_best(reps, || {
            let faces = aapsm_graph::trace_faces(&cg.graph);
            let dual = aapsm_graph::build_dual(&cg.graph, &faces);
            (faces, dual)
        });
        let (face_dual_parallel_s, parallel_embedding) = time_best(reps, || {
            let faces = aapsm_graph::trace_faces_par(&cg.graph, 0);
            let dual = aapsm_graph::build_dual_par(&cg.graph, &faces, 0);
            (faces, dual)
        });
        assert_eq!(
            serial_embedding, parallel_embedding,
            "{}: parallel face trace / dual build diverged from serial",
            design.name
        );

        // ---- Stage 5: bipartization. ----
        let method = BipartizeMethod::OptimalDual {
            tjoin: TJoinMethod::default(),
            blocks: false,
        };
        let (bipartize_serial_s, serial) = time_best(reps, || bipartize_with(&cg.graph, method, 1));
        let (bipartize_parallel_s, parallel) =
            time_best(reps, || bipartize_with(&cg.graph, method, 0));
        assert_eq!(
            serial.deleted, parallel.deleted,
            "{}: parallel bipartization diverged from serial",
            design.name
        );
        // Which T-join engine the auto-selection picked per dual
        // instance: a design-visible behavior counter (gated for exact
        // equality by bench_gate — a method-mix drift is a behavior
        // change, not timing noise).
        let census = tjoin_method_census(&cg.graph, false);

        // ---- Stage 6: incremental re-detect of the correction loop.
        // Two rounds are measured against a from-scratch extract+detect
        // of the corrected layout, both asserted identical first:
        // `local` corrects one conflict (the ECO / near-convergence
        // shape the engine exists for), `full` corrects every conflict
        // at once (whole-chip cuts — the engine's adaptive fallback must
        // keep it at rough parity with scratch). ----
        let detect_cfg = DetectConfig {
            parallelism: 0,
            ..DetectConfig::default()
        };
        let mut engine = RedetectEngine::new(rules, detect_cfg.clone());
        let round0 = engine.detect_full(&layout);
        assert!(
            round0.conflict_count() > 0,
            "{}: scaling designs are expected to need correction",
            design.name
        );

        // ---- Stage 7: correction planning (decomposed weighted set
        // cover). Serial vs parallel per-component solves, identical
        // plans asserted; the counters record the plan weight (total
        // inserted width) and how much of the cover is *proven* optimal
        // (truncated / greedy components never count). ----
        let plan_geom = engine.geometry().expect("detected");
        let (correction_serial_s, plan_serial) = time_best(reps, || {
            plan_correction(
                plan_geom,
                &round0.conflicts,
                &rules,
                &CorrectionOptions {
                    parallelism: 1,
                    ..CorrectionOptions::default()
                },
            )
        });
        let (correction_parallel_s, plan_parallel) = time_best(reps, || {
            plan_correction(
                plan_geom,
                &round0.conflicts,
                &rules,
                &CorrectionOptions {
                    parallelism: 0,
                    ..CorrectionOptions::default()
                },
            )
        });
        assert_eq!(
            plan_serial, plan_parallel,
            "{}: parallel correction planning diverged from serial",
            design.name
        );
        let plan_weight = plan_serial.inserted_width(Axis::X) + plan_serial.inserted_width(Axis::Y);
        let measure_redetect = |conflict_count: usize, label: &str| {
            let plan = plan_correction(
                engine.geometry().expect("detected"),
                &round0.conflicts[..conflict_count],
                &rules,
                &CorrectionOptions::default(),
            );
            assert!(
                !plan.cuts.is_empty(),
                "{}: {label} plan is empty",
                design.name
            );
            let modified = apply_cuts(&layout, &plan.cuts);
            let (scratch_s, scratch) = time_best(reps, || {
                let geom = extract_phase_geometry_par(&modified, &rules, 0);
                let report = detect_conflicts(&geom, &detect_cfg);
                (geom, report)
            });
            // Each rep replays from a clone of the post-round-0 state
            // (the clone cost stays out of the measurement).
            let mut engines: Vec<RedetectEngine> = (0..reps).map(|_| engine.clone()).collect();
            let mut incremental_s = f64::INFINITY;
            let mut report = None;
            for e in &mut engines {
                let t = Instant::now();
                let r = e.redetect_after_correction(&modified, &plan.cuts);
                incremental_s = incremental_s.min(t.elapsed().as_secs_f64());
                report = Some(r);
            }
            let report = report.expect("reps >= 1");
            let last = engines.last().expect("reps >= 1");
            assert_eq!(
                last.geometry(),
                Some(&scratch.0),
                "{}: {label} incremental re-extraction diverged from scratch",
                design.name
            );
            assert_eq!(
                report.conflicts, scratch.1.conflicts,
                "{}: {label} incremental re-detect diverged from scratch",
                design.name
            );
            assert_eq!(report.stats.crossings, scratch.1.stats.crossings);
            assert_eq!(
                report.stats.planarize_removed,
                scratch.1.stats.planarize_removed
            );
            (scratch_s, incremental_s, *last.last_stats())
        };
        let (local_scratch_s, local_incremental_s, local_stats) = measure_redetect(1, "local");
        // Steady-state solve-cache discipline. The old flank-weight
        // bucketing (`next_power_of_two` of the chip's overlap sum) let
        // one inserted cut reprice *every* component's cache key — the
        // wipe showed up as rows_x1 going 0 hits / 33 misses on a
        // one-conflict round. With the weight pinned to its floor, a
        // round may only miss on components the cuts actually dirtied: a
        // handful per inserted grid line, independent of chip size.
        assert!(
            local_stats.solve_hits > local_stats.solve_misses,
            "{}: solve cache went cold on a one-conflict round ({} hits, {} misses) — keys are unstable again",
            design.name,
            local_stats.solve_hits,
            local_stats.solve_misses
        );
        assert!(
            local_stats.solve_misses <= 16,
            "{}: {} solve-cache misses in a one-conflict round — expected only the cut-dirtied components",
            design.name,
            local_stats.solve_misses
        );
        let (full_scratch_s, full_incremental_s, _) =
            measure_redetect(round0.conflict_count(), "full");

        let stages = [
            Stage::from_secs("extract", extract_serial_s, extract_parallel_s),
            Stage::from_secs("build", build_serial_s, build_parallel_s),
            Stage::from_secs("planarize", planarize_serial_s, planarize_parallel_s),
            Stage::from_secs("face_dual", face_dual_serial_s, face_dual_parallel_s),
            Stage::from_secs("bipartize", bipartize_serial_s, bipartize_parallel_s),
        ];
        // `face_dual` is the front half of `bipartize` (which re-traces
        // internally), so it is reported but excluded from the totals.
        let total_serial_ms: f64 = stages
            .iter()
            .filter(|s| s.name != "face_dual")
            .map(|s| s.serial_ms)
            .sum();
        let total_parallel_ms: f64 = stages
            .iter()
            .filter(|s| s.name != "face_dual")
            .map(|s| s.parallel_ms)
            .sum();
        let mut stage_json: Vec<String> = stages
            .iter()
            .map(|s| {
                if s.name == "bipartize" {
                    format!(
                        concat!(
                            "\"bipartize\": {{\"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, ",
                            "\"speedup\": {:.3}, ",
                            "\"closure_picks\": {}, \"gadget_picks\": {}, ",
                            "\"identical\": true}}"
                        ),
                        s.serial_ms,
                        s.parallel_ms,
                        s.serial_ms / s.parallel_ms.max(1e-12),
                        census.closure,
                        census.gadget,
                    )
                } else {
                    s.json()
                }
            })
            .collect();
        stage_json.push(format!(
            concat!(
                "\"correction_plan\": {{",
                "\"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, ",
                "\"speedup\": {:.3}, ",
                "\"plan_weight\": {}, \"grid_lines\": {}, ",
                "\"cover_components\": {}, \"cover_optimal_components\": {}, ",
                "\"cover_optimal\": {}, ",
                "\"identical\": true}}"
            ),
            correction_serial_s * 1e3,
            correction_parallel_s * 1e3,
            correction_serial_s / correction_parallel_s.max(1e-12),
            plan_weight,
            plan_serial.grid_line_count(),
            plan_serial.cover_components,
            plan_serial.cover_optimal_components,
            plan_serial.cover_optimal,
        ));
        stage_json.push(format!(
            concat!(
                "\"incremental_redetect\": {{",
                "\"local_scratch_ms\": {:.3}, \"local_incremental_ms\": {:.3}, ",
                "\"local_speedup\": {:.3}, ",
                "\"full_scratch_ms\": {:.3}, \"full_incremental_ms\": {:.3}, ",
                "\"full_speedup\": {:.3}, ",
                "\"overlaps_reused\": {}, \"pairs_rescanned\": {}, ",
                "\"tiles_reused\": {}, \"tiles_rebuilt\": {}, ",
                "\"solve_hits\": {}, \"solve_misses\": {}, ",
                "\"identical\": true}}"
            ),
            local_scratch_s * 1e3,
            local_incremental_s * 1e3,
            local_scratch_s / local_incremental_s.max(1e-12),
            full_scratch_s * 1e3,
            full_incremental_s * 1e3,
            full_scratch_s / full_incremental_s.max(1e-12),
            local_stats.reused_overlaps,
            local_stats.rescanned_pairs,
            local_stats.tiles_reused,
            local_stats.tiles_rebuilt,
            local_stats.solve_hits,
            local_stats.solve_misses,
        ));
        pipeline_rows.push(format!(
            concat!(
                "    {{\"design\": \"{}\", \"rows\": {}, \"polygons\": {}, ",
                "\"graph_nodes\": {}, \"graph_edges\": {}, \"conflicts\": {}, ",
                "\"stages\": {{{}}}, ",
                "\"total_serial_ms\": {:.3}, \"total_parallel_ms\": {:.3}, ",
                "\"identical\": true}}"
            ),
            design.name,
            design.params.rows,
            layout.len(),
            cg.graph.node_count(),
            cg.graph.alive_edge_count(),
            serial.deleted.len(),
            stage_json.join(", "),
            total_serial_ms,
            total_parallel_ms,
        ));
        legacy_rows.push(format!(
            concat!(
                "    {{\"design\": \"{}\", \"rows\": {}, \"polygons\": {}, ",
                "\"graph_nodes\": {}, \"graph_edges\": {}, \"conflicts\": {}, ",
                "\"build_ms\": {:.3}, \"planarize_ms\": {:.3}, ",
                "\"bipartize_serial_ms\": {:.3}, \"bipartize_parallel_ms\": {:.3}, ",
                "\"speedup\": {:.3}, ",
                "\"closure_picks\": {}, \"gadget_picks\": {}, ",
                "\"identical\": true}}"
            ),
            design.name,
            design.params.rows,
            layout.len(),
            cg.graph.node_count(),
            cg.graph.alive_edge_count(),
            serial.deleted.len(),
            build_serial_s * 1e3,
            planarize_serial_s * 1e3,
            bipartize_serial_s * 1e3,
            bipartize_parallel_s * 1e3,
            bipartize_serial_s / bipartize_parallel_s.max(1e-12),
            census.closure,
            census.gadget,
        ));
        eprintln!(
            "  extract {:.2}/{:.2} ms, build {:.2}/{:.2} ms, planarize {:.2}/{:.2} ms, bipartize {:.2}/{:.2} ms (serial/parallel, {} workers)",
            extract_serial_s * 1e3,
            extract_parallel_s * 1e3,
            build_serial_s * 1e3,
            build_parallel_s * 1e3,
            planarize_serial_s * 1e3,
            planarize_parallel_s * 1e3,
            bipartize_serial_s * 1e3,
            bipartize_parallel_s * 1e3,
            workers
        );
        eprintln!(
            "  redetect: local {:.2}/{:.2} ms ({:.2}x), full round {:.2}/{:.2} ms ({:.2}x) (scratch/incremental)",
            local_scratch_s * 1e3,
            local_incremental_s * 1e3,
            local_scratch_s / local_incremental_s.max(1e-12),
            full_scratch_s * 1e3,
            full_incremental_s * 1e3,
            full_scratch_s / full_incremental_s.max(1e-12),
        );
    }

    let throughput_json = measure_throughput(&rules, workers);
    let hier_json = measure_hier(&rules, reps);

    for (bench, path, rows, extra) in [
        (
            "bipartize_scaling",
            "BENCH_bipartize_scaling.json",
            &legacy_rows,
            String::new(),
        ),
        (
            "detect_pipeline",
            "BENCH_detect_pipeline.json",
            &pipeline_rows,
            format!(",\n  \"throughput\": {throughput_json},\n  \"hier\": {hier_json}"),
        ),
    ] {
        let json = format!(
            "{{\n  \"bench\": \"{}\",\n  \"workers\": {},\n  \"reps\": {},\n  \"designs\": [\n{}\n  ]{}\n}}\n",
            bench,
            workers,
            reps,
            rows.join(",\n"),
            extra
        );
        std::fs::write(path, &json).expect("write bench JSON");
        println!("{json}");
        eprintln!("wrote {path}");
    }
}

/// Hierarchical detection: a 4×4 grid of one synthesized standard cell
/// in two placement orientations (upright and rotated-reflected),
/// instances isolated (farther apart than the interaction radius) so
/// each conflict-graph component is interior to one instance.
/// `detect_hier` must answer bit-identically to flattening first, reuse
/// the primed per-cell solves for every instance, and miss the solve
/// cache exactly zero times — a miss here means the coordinate-free
/// cache keys regressed. (The all-eight-orientations coverage lives in
/// `crates/core/tests/hier_equivalence.rs`; the bench keeps two classes
/// so the priming cost stays proportional to what the grid reuses.)
fn measure_hier(rules: &DesignRules, reps: usize) -> String {
    eprintln!("measuring hierarchical reuse ...");
    let leaf_layout = aapsm_layout::synth::generate(
        &SynthParams {
            rows: 1,
            gates_per_row: 120,
            strap_frac: 0.75,
            jog_frac: 0.08,
            short_mid_frac: 0.06,
            seed: 31,
            ..SynthParams::default()
        },
        rules,
    );
    let mut leaf = Cell::new("LEAF");
    leaf.rects = leaf_layout.rects().to_vec();
    let bbox = Layout::from_rects(leaf.rects.clone())
        .stats()
        .bbox
        .expect("leaf has rects");
    let pitch = bbox.width().max(bbox.height()) + 8 * rules.interaction_radius();
    let mut hier = HierLayout::new();
    let leaf_ix = hier.add_cell(leaf);
    let mut top = Cell::new("TOP");
    for r in 0..4usize {
        for c in 0..4usize {
            let orient = Orient::all()[((r * 4 + c) % 2) * 5];
            let obb = orient.try_apply_rect(&bbox).expect("oriented bbox fits");
            top.instances.push(Instance {
                cell: leaf_ix,
                placement: Placement::new(
                    orient,
                    c as i64 * pitch - obb.x_lo(),
                    r as i64 * pitch - obb.y_lo(),
                ),
            });
        }
    }
    let top_ix = hier.add_cell(top);
    hier.top = Some(top_ix);

    let flat = hier.flatten().expect("valid hierarchy");
    let cfg = DetectConfig {
        parallelism: 0,
        ..DetectConfig::default()
    };
    let (flat_s, flat_report) = time_best(reps, || {
        let geom = extract_phase_geometry_par(&flat, rules, 0);
        detect_conflicts(&geom, &cfg)
    });
    let (hier_s, hier_report) = time_best(reps, || {
        detect_hier(&hier, rules, &cfg).expect("valid hierarchy")
    });
    assert_eq!(
        hier_report.report.conflicts, flat_report.conflicts,
        "hierarchical detection diverged from the flattened pipeline"
    );
    let stats = hier_report.hier;
    assert!(
        stats.instances_reused > 0,
        "no per-cell solve reuse across {} instances: {stats:?}",
        stats.instances_total
    );
    assert_eq!(
        stats.solve_misses, 0,
        "isolated instances must all answer from the primed cache: {stats:?}"
    );
    eprintln!(
        "  flat {:.2} ms, hier {:.2} ms ({:.2}x): {} classes primed, {} of {} components reused",
        flat_s * 1e3,
        hier_s * 1e3,
        flat_s / hier_s.max(1e-12),
        stats.cells_detected,
        stats.instances_reused,
        stats.instances_reused + stats.solve_misses,
    );
    format!(
        concat!(
            "{{\"design\": \"cell_grid_4x4\", \"conflicts\": {}, ",
            "\"cells_detected\": {}, \"instances\": {}, \"instances_reused\": {}, ",
            "\"solve_misses\": {}, ",
            "\"flat_ms\": {:.3}, \"hier_ms\": {:.3}, \"speedup\": {:.3}, ",
            "\"identical\": true}}"
        ),
        flat_report.conflicts.len(),
        stats.cells_detected,
        stats.instances_total,
        stats.instances_reused,
        stats.solve_misses,
        flat_s * 1e3,
        hier_s * 1e3,
        flat_s / hier_s.max(1e-12),
    )
}

/// Service-layer throughput: concurrent editor sessions streaming warm
/// re-detections at the resident service, measured at the client
/// (submit → response). Every answer is asserted bit-identical to the
/// direct pipeline before any number is reported, and no degradation is
/// tolerated (no ladder, no deadline — this measures exact answers).
fn measure_throughput(rules: &DesignRules, workers: usize) -> String {
    const SESSIONS: usize = 8;
    const PER_SESSION: usize = 20;
    eprintln!("measuring service throughput ...");
    let suite = scaling_suite();
    let design = &suite[1]; // rows_x4: large enough to dominate overhead
    let layout = aapsm_layout::synth::generate(&design.params, rules);
    let baseline = {
        let geom = extract_phase_geometry(&layout, rules);
        detect_conflicts(&geom, &DetectConfig::default()).conflicts
    };

    let mut config = ServiceConfig::new(*rules);
    config.workers = 0; // one worker per CPU
    config.queue_capacity = SESSIONS * 2;
    config.ladder = LoadLadder::default();
    let service = DetectionService::start(config).expect("service start");
    let ids: Vec<_> = (0..SESSIONS)
        .map(|_| service.open_session(layout.clone()).expect("open session"))
        .collect();

    let t0 = Instant::now();
    // lint: allow(L3) — bench harness load generator; a worker panic must fail the whole run
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let service = &service;
                let baseline = &baseline;
                // lint: allow(L3) — bench harness load generator; a worker panic must fail the whole run
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(PER_SESSION);
                    for _ in 0..PER_SESSION {
                        let t = Instant::now();
                        let response = service.request(id, Request::Detect).expect("detect");
                        lat.push(t.elapsed().as_secs_f64());
                        assert!(!response.degraded(), "unloaded service degraded an answer");
                        match &response.kind {
                            ResponseKind::Detection { conflicts, .. } => {
                                assert_eq!(
                                    conflicts, baseline,
                                    "service answer diverged from the direct pipeline"
                                );
                            }
                            other => panic!("expected a detection, got {other:?}"),
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let report = service.shutdown(std::time::Duration::from_secs(60));
    assert!(report.within_deadline, "bench service failed to drain");

    latencies.sort_by(f64::total_cmp);
    let pct_ms =
        |p: f64| -> f64 { latencies[((latencies.len() - 1) as f64 * p).round() as usize] * 1e3 };
    let total = SESSIONS * PER_SESSION;
    let req_per_sec = total as f64 / wall.max(1e-12);
    eprintln!(
        "  {} requests over {} sessions: {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
        total,
        SESSIONS,
        req_per_sec,
        pct_ms(0.50),
        pct_ms(0.99),
    );
    format!(
        concat!(
            "{{\"design\": \"{}\", \"sessions\": {}, \"requests\": {}, ",
            "\"workers\": {}, \"req_per_sec\": {:.1}, ",
            "\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"identical\": true}}"
        ),
        design.name,
        SESSIONS,
        total,
        workers,
        req_per_sec,
        pct_ms(0.50),
        pct_ms(0.99),
    )
}
