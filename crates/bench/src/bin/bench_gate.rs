//! Regression gate over the committed benchmark snapshots.
//!
//! Usage: `bench_gate <committed.json> <fresh.json> [...]` — paths come
//! in pairs. Every numeric `*_ms` field present in both snapshots (per
//! design, per stage, plus the totals) is compared; the gate **fails**
//! (exit 1) when a fresh timing exceeds the committed one by more than
//! `BENCH_GATE_PCT` percent (default 25). Fields whose committed value
//! is under the noise floor [`GATE_FLOOR_MS`] (10 ms; override
//! `BENCH_GATE_FLOOR_MS`, and the active value is logged in each gate
//! header) are reported but never gated — small timings are scheduler
//! noise, not signal. Throughput (`req_per_sec`) gates in the opposite
//! direction: a drop beyond the threshold fails. Behavior counters
//! (`*_picks` — the T-join engine choices the auto-selection made) are
//! gated for **exact equality**: a method-mix drift is a behavior
//! change, not timing noise, so no threshold or floor applies.
//!
//! The parser below is a minimal recursive-descent JSON reader (the
//! build environment has no registry access for serde); it accepts
//! exactly the subset our own `bench_json` writer emits.

use std::collections::BTreeMap;

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn arr(&self) -> &[Value] {
        match self {
            Value::Arr(v) => v,
            _ => &[],
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("non-utf8 number: {e}"))?;
        text.parse()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // Our writer never escapes anything but this keeps
                    // the reader honest on valid JSON.
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(&c) => out.push(c as char),
                        None => return Err("truncated escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| format!("non-utf8 string: {e}"))?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found '{}'", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found '{}'", other as char)),
            }
        }
    }
}

fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// How one flattened metric is judged.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Gate {
    /// A timing: fresh may not exceed committed by the threshold.
    SmallerBetter,
    /// A throughput: fresh may not drop below committed by the threshold.
    LargerBetter,
    /// A behavior counter: fresh must equal committed exactly.
    Exact,
}

/// Flattens every gateable metric of a snapshot into `path → (value, gate)`.
fn metrics(root: &Value) -> BTreeMap<String, (f64, Gate)> {
    let mut out = BTreeMap::new();
    let field_gate = |key: &str| {
        if key.ends_with("_ms") {
            Some(Gate::SmallerBetter)
        } else if key.ends_with("_picks") {
            Some(Gate::Exact)
        } else {
            None
        }
    };
    for design in root.get("designs").map(Value::arr).unwrap_or(&[]) {
        let name = design
            .get("design")
            .and_then(Value::str)
            .unwrap_or("?")
            .to_string();
        for (key, value) in match design {
            Value::Obj(map) => map.iter(),
            _ => continue,
        } {
            match value {
                Value::Num(n) => {
                    if let Some(gate) = field_gate(key) {
                        out.insert(format!("{name}.{key}"), (*n, gate));
                    }
                }
                Value::Obj(stages) if key == "stages" => {
                    for (stage, fields) in stages {
                        if let Value::Obj(fields) = fields {
                            for (field, v) in fields {
                                if let (Some(gate), Some(n)) = (field_gate(field), v.num()) {
                                    out.insert(format!("{name}.{stage}.{field}"), (n, gate));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    if let Some(tp) = root.get("throughput") {
        if let Some(n) = tp.get("req_per_sec").and_then(Value::num) {
            out.insert(
                "throughput.req_per_sec".to_string(),
                (n, Gate::LargerBetter),
            );
        }
        for field in ["p50_ms", "p99_ms"] {
            if let Some(n) = tp.get(field).and_then(Value::num) {
                out.insert(format!("throughput.{field}"), (n, Gate::SmallerBetter));
            }
        }
    }
    if let Some(h) = root.get("hier") {
        for field in ["flat_ms", "hier_ms"] {
            if let Some(n) = h.get(field).and_then(Value::num) {
                out.insert(format!("hier.{field}"), (n, Gate::SmallerBetter));
            }
        }
        // Reuse accounting is behavior, not timing: a drop in
        // `instances_reused` (or any miss at all on the isolated bench
        // grid) means the coordinate-free cache keys regressed.
        for field in [
            "cells_detected",
            "instances",
            "instances_reused",
            "solve_misses",
        ] {
            if let Some(n) = h.get(field).and_then(Value::num) {
                out.insert(format!("hier.{field}"), (n, Gate::Exact));
            }
        }
    }
    out
}

/// Timings whose committed value is below this are noise, not signal:
/// sub-10ms stages swing well past any sane threshold between two
/// back-to-back runs on an idle machine (override: `BENCH_GATE_FLOOR_MS`).
const GATE_FLOOR_MS: f64 = 10.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: bench_gate <committed.json> <fresh.json> [<committed> <fresh> ...]");
        std::process::exit(2);
    }
    let pct: f64 = std::env::var("BENCH_GATE_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);
    let floor_ms: f64 = std::env::var("BENCH_GATE_FLOOR_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(GATE_FLOOR_MS);
    let mut failures = 0u32;
    let mut gated = 0u32;
    for pair in args.chunks(2) {
        let (committed_path, fresh_path) = (&pair[0], &pair[1]);
        let read_metrics = |path: &str| {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            metrics(&parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}")))
        };
        let committed = read_metrics(committed_path);
        let fresh = read_metrics(fresh_path);
        println!(
            "== {committed_path} vs {fresh_path} (threshold {pct}%, noise floor {floor_ms} ms)"
        );
        for (path, &(old, gate)) in &committed {
            let Some(&(new, _)) = fresh.get(path) else {
                println!("  MISSING  {path} (in committed, not in fresh)");
                failures += 1;
                continue;
            };
            if gate == Gate::Exact {
                let verdict = if new == old {
                    gated += 1;
                    "ok"
                } else {
                    failures += 1;
                    "FAIL"
                };
                println!("  {verdict:>7}  {path}: {old} -> {new} (exact)");
                continue;
            }
            let delta_pct = if old.abs() < 1e-12 {
                0.0
            } else if gate == Gate::LargerBetter {
                (old - new) / old * 100.0 // positive = regression (slower)
            } else {
                (new - old) / old * 100.0
            };
            let gateable = gate == Gate::LargerBetter || old >= floor_ms;
            let verdict = if !gateable {
                "noise"
            } else if delta_pct > pct {
                failures += 1;
                "FAIL"
            } else {
                gated += 1;
                "ok"
            };
            println!("  {verdict:>7}  {path}: {old:.3} -> {new:.3} ({delta_pct:+.1}%)");
        }
    }
    println!("{gated} metrics gated, {failures} regressions beyond {pct}%");
    if failures > 0 {
        eprintln!("bench gate FAILED");
        std::process::exit(1);
    }
    println!("bench gate passed");
}
