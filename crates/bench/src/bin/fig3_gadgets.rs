//! Regenerates the Figure 3 / Figure 4 content: sizes of the gadget
//! matching instances per node degree, for the complete, optimized (≤3)
//! and generalized gadget constructions.
//!
//! Usage: `cargo run -p aapsm-bench --bin fig3_gadgets --release`

use aapsm_tjoin::{solve_gadget, GadgetKind, TJoinInstance};

/// A star instance with the given hub degree (plus parity-consistent T).
fn star(degree: usize) -> TJoinInstance {
    let mut edges = Vec::new();
    let mut t = vec![false];
    for l in 0..degree {
        edges.push((0, l + 1, 1 + l as i64));
        t.push(true);
    }
    if degree % 2 == 1 {
        t[1] = false;
    }
    TJoinInstance::new(degree + 1, edges, t).expect("valid star instance")
}

fn main() {
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "degree", "compl n", "compl e", "opt n", "opt e", "gen8 n", "gen8 e"
    );
    println!("{}", "-".repeat(78));
    for degree in [3usize, 5, 8, 12, 16, 24, 32] {
        let inst = star(degree);
        let kinds = [
            GadgetKind::Complete,
            GadgetKind::Optimized,
            GadgetKind::Generalized { max_group: 8 },
        ];
        let stats: Vec<_> = kinds
            .iter()
            .map(|&k| solve_gadget(&inst, k).expect("feasible").1)
            .collect();
        println!(
            "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
            degree,
            stats[0].matching_nodes,
            stats[0].matching_edges,
            stats[1].matching_nodes,
            stats[1].matching_edges,
            stats[2].matching_nodes,
            stats[2].matching_edges,
        );
    }
    println!(
        "\ncomplete gadgets grow O(d^2) edges; optimized (<=3) adds many divide junctions;\n\
         generalized (the paper, Fig. 4) balances both — fewest nodes at bounded edges."
    );
}
