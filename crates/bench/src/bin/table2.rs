//! Regenerates Table 2: layout modification for a variety of designs.
//!
//! Columns follow the paper: design area (µm²), number of conflicts
//! selected by detection, number of grid lines where end-to-end spaces are
//! added, the maximum number of conflicts removed by a single line, and
//! the percentage area increase.
//!
//! Usage: `cargo run -p aapsm-bench --bin table2 --release`

use aapsm_bench::prepare;
use aapsm_core::{
    apply_correction, detect_conflicts, plan_correction, CorrectionOptions, DetectConfig,
};
use aapsm_layout::synth::modification_suite;
use aapsm_layout::DesignRules;

fn main() {
    let rules = DesignRules::default();
    println!(
        "{:<5} {:>12} | {:>9} {:>6} {:>5} | {:>8} {:>9}",
        "design", "area (um^2)", "conflicts", "grid", "max", "area+%", "verified"
    );
    println!("{}", "-".repeat(70));
    let mut increases = Vec::new();
    for d in modification_suite() {
        let p = prepare(&d, &rules);
        let report = detect_conflicts(&p.geom, &DetectConfig::default());
        let plan = plan_correction(
            &p.geom,
            &report.conflicts,
            &rules,
            &CorrectionOptions::default(),
        );
        let outcome = apply_correction(&p.layout, &plan, &rules);
        let area_um2 = outcome.area_before as f64 / 1e6; // dbu^2 (nm^2) -> um^2
        increases.push(outcome.area_increase_pct);
        println!(
            "{:<5} {:>12.1} | {:>9} {:>6} {:>5} | {:>7.2}% {:>9}",
            p.name,
            area_um2,
            report.conflict_count(),
            plan.grid_line_count(),
            plan.max_conflicts_single_line,
            outcome.area_increase_pct,
            if outcome.verified { "yes" } else { "NO" }
        );
    }
    println!("{}", "-".repeat(70));
    let avg = increases.iter().sum::<f64>() / increases.len() as f64;
    let (lo, hi) = (
        increases.iter().cloned().fold(f64::INFINITY, f64::min),
        increases.iter().cloned().fold(0.0f64, f64::max),
    );
    println!(
        "area increase range {:.2}%..{:.2}%, average {:.2}%  (paper: 0.7%..11.8%, average ~4%)",
        lo, hi, avg
    );
}
