//! Table 2 runtime: the layout-modification planner (intervals → grid →
//! set cover) and the insertion itself.

use aapsm_bench::prepare;
use aapsm_core::{
    apply_correction, detect_conflicts, plan_correction, CorrectionOptions, DetectConfig,
};
use aapsm_layout::synth::modification_suite;
use aapsm_layout::DesignRules;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rules = DesignRules::default();
    let mut group = c.benchmark_group("table2_modification");
    group.sample_size(10);
    for design in modification_suite().into_iter().take(3) {
        let p = prepare(&design, &rules);
        let report = detect_conflicts(&p.geom, &DetectConfig::default());
        group.bench_function(format!("plan_{}", p.name), |b| {
            b.iter(|| {
                plan_correction(
                    std::hint::black_box(&p.geom),
                    &report.conflicts,
                    &rules,
                    &CorrectionOptions::default(),
                )
            })
        });
        let plan = plan_correction(
            &p.geom,
            &report.conflicts,
            &rules,
            &CorrectionOptions::default(),
        );
        group.bench_function(format!("apply_{}", p.name), |b| {
            b.iter(|| apply_correction(std::hint::black_box(&p.layout), &plan, &rules))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
