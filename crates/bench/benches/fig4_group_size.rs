//! Figure 4 ablation: generalized-gadget group size sweep. Larger complete
//! groups mean fewer divide junctions (fewer matching nodes) but
//! quadratically more intra-group edges; the sweep locates the balance the
//! paper exploits for its ~16% matching-runtime gain.

use aapsm_tjoin::{solve_gadget, GadgetKind, TJoinInstance};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};

fn random_instance(seed: u64) -> TJoinInstance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = 60;
    let mut edges = Vec::new();
    for _ in 0..220 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u, v, rng.gen_range(1..100) as i64));
        }
    }
    // Even T per component: mark pairs of nodes.
    let mut t = vec![false; n];
    for ti in t.iter_mut().take(20) {
        *ti = true;
    }
    TJoinInstance::new(n, edges, t).expect("valid instance")
}

fn bench(c: &mut Criterion) {
    let inst = random_instance(9);
    let mut group = c.benchmark_group("fig4_group_size");
    group.sample_size(10);
    for max_group in [2usize, 3, 4, 6, 8, 12, 16] {
        group.bench_function(format!("group_{max_group}"), |b| {
            b.iter(|| {
                solve_gadget(
                    std::hint::black_box(&inst),
                    GadgetKind::Generalized { max_group },
                )
                .expect("feasible")
            })
        });
    }
    group.bench_function("complete", |b| {
        b.iter(|| {
            solve_gadget(std::hint::black_box(&inst), GadgetKind::Complete).expect("feasible")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
