//! Table 1 end-to-end detection scaling: full pipeline (PCG vs FG) across
//! increasing design sizes.

use aapsm_bench::prepare;
use aapsm_core::{detect_conflicts, DetectConfig, GraphKind};
use aapsm_layout::synth::standard_suite;
use aapsm_layout::DesignRules;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rules = DesignRules::default();
    let mut group = c.benchmark_group("table1_detection");
    group.sample_size(10);
    for design in standard_suite().into_iter().take(3) {
        let p = prepare(&design, &rules);
        for (tag, kind) in [
            ("pcg", GraphKind::PhaseConflict),
            ("fg", GraphKind::Feature),
        ] {
            group.bench_function(format!("{}_{}", p.name, tag), |b| {
                b.iter(|| {
                    detect_conflicts(
                        std::hint::black_box(&p.geom),
                        &DetectConfig {
                            graph: kind,
                            ..DetectConfig::default()
                        },
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
