//! Blossom matching scaling: minimum-weight perfect matching on random
//! dense graphs of increasing size (the inner engine of every gadget
//! reduction).

use aapsm_matching::min_weight_perfect_matching;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_scale");
    group.sample_size(10);
    for n in [40usize, 80, 160] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                if rng.gen_bool(0.4) {
                    edges.push((u, v, rng.gen_range(1..10_000)));
                }
            }
        }
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| min_weight_perfect_matching(n, std::hint::black_box(&edges)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
