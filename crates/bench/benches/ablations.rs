//! Ablation benches for the design choices called out in DESIGN.md:
//! planarization edge ordering, component vs block decomposition, and
//! greedy vs exact covering.

use aapsm_bench::prepare;
use aapsm_core::{
    bipartize, build_phase_conflict_graph, detect_conflicts, plan_correction, planarize_graph,
    BipartizeMethod, CorrectionOptions, DetectConfig, PlanarizeOrder, TJoinMethod,
};
use aapsm_layout::synth::{modification_suite, standard_suite};
use aapsm_layout::DesignRules;
use criterion::{criterion_group, criterion_main, Criterion};

fn planarize_orders(c: &mut Criterion) {
    let rules = DesignRules::default();
    let p = prepare(&standard_suite()[1], &rules);
    let mut group = c.benchmark_group("ablation_planarize");
    group.sample_size(10);
    for (tag, order) in [
        ("min_weight", PlanarizeOrder::MinWeightFirst),
        ("most_crossings", PlanarizeOrder::MostCrossingsFirst),
        ("weight_per_crossing", PlanarizeOrder::MinWeightPerCrossing),
    ] {
        group.bench_function(tag, |b| {
            b.iter(|| {
                let mut cg = build_phase_conflict_graph(std::hint::black_box(&p.geom));
                planarize_graph(&mut cg, order).len()
            })
        });
    }
    group.finish();
}

fn decomposition(c: &mut Criterion) {
    let rules = DesignRules::default();
    let p = prepare(&standard_suite()[0], &rules);
    let mut cg = build_phase_conflict_graph(&p.geom);
    planarize_graph(&mut cg, PlanarizeOrder::MinWeightFirst);
    let mut group = c.benchmark_group("ablation_decompose");
    group.sample_size(10);
    for (tag, blocks) in [("components", false), ("blocks", true)] {
        group.bench_function(tag, |b| {
            b.iter(|| {
                bipartize(
                    std::hint::black_box(&cg.graph),
                    BipartizeMethod::OptimalDual {
                        tjoin: TJoinMethod::default(),
                        blocks,
                    },
                )
            })
        });
    }
    group.finish();
}

fn cover_solvers(c: &mut Criterion) {
    let rules = DesignRules::default();
    let p = prepare(&modification_suite()[0], &rules);
    let report = detect_conflicts(&p.geom, &DetectConfig::default());
    let mut group = c.benchmark_group("ablation_cover");
    group.sample_size(10);
    for (tag, limit) in [("greedy_only", 0usize), ("exact_when_small", 64)] {
        group.bench_function(tag, |b| {
            b.iter(|| {
                plan_correction(
                    std::hint::black_box(&p.geom),
                    &report.conflicts,
                    &rules,
                    &CorrectionOptions {
                        exact_cover_limit: limit,
                        ..CorrectionOptions::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, planarize_orders, decomposition, cover_solvers);
criterion_main!(benches);
