//! Table 1 runtime columns: bipartization (dual T-join + matching) with
//! optimized vs generalized gadgets, plus the shortest-path reduction for
//! reference.

use aapsm_bench::{detect_with, prepare};
use aapsm_core::{GadgetKind, TJoinMethod};
use aapsm_layout::synth::standard_suite;
use aapsm_layout::DesignRules;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let rules = DesignRules::default();
    let suite = standard_suite();
    let design = prepare(&suite[1], &rules); // d2
    let mut group = c.benchmark_group("table1_gadget_runtime");
    group.sample_size(10);
    for (name, method) in [
        ("o_gadget", TJoinMethod::Gadget(GadgetKind::Optimized)),
        ("g_gadget", TJoinMethod::Gadget(GadgetKind::default())),
        ("shortest_path", TJoinMethod::ShortestPath),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| detect_with(std::hint::black_box(&design.geom), method))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
