//! Per-lint fixture corpus: for every lint a known-bad fixture must
//! fire, the corrected fixture must pass, and a suppressed fixture must
//! pass — so each lint's firing condition is pinned from both sides.

fn run(files: &[(&str, &str)]) -> Vec<aapsm_analysis::Finding> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|&(p, t)| (p.to_string(), t.to_string()))
        .collect();
    aapsm_analysis::analyze(&sources).findings
}

/// `"path:line [Lx]"` for every finding, for exact assertions.
fn keys(files: &[(&str, &str)]) -> Vec<String> {
    run(files)
        .iter()
        .map(|f| format!("{}:{} [{}]", f.path, f.line, f.lint.code()))
        .collect()
}

fn fires(files: &[(&str, &str)], code: &str) -> bool {
    run(files).iter().any(|f| f.lint.code() == code)
}

// ---------------------------------------------------------------- L1

const L1_BAD: &str = r#"
use aapsm_fault::Budget;
pub fn sweep_budgeted(xs: &[u64], budget: &Budget) -> u64 {
    let mut acc = 0;
    for &x in xs {
        acc += x;
    }
    acc
}
"#;

const L1_GOOD_CHARGE: &str = r#"
use aapsm_fault::{Budget, Stage};
pub fn sweep_budgeted(xs: &[u64], budget: &Budget) -> Result<u64, BudgetExceeded> {
    let mut acc = 0;
    for &x in xs {
        budget.charge(Stage::Cover, 1)?;
        acc += x;
    }
    Ok(acc)
}
"#;

#[test]
fn l1_unbudgeted_loop_fires() {
    let files = [("crates/foo/src/util.rs", L1_BAD)];
    assert_eq!(keys(&files), vec!["crates/foo/src/util.rs:5 [L1]"]);
}

#[test]
fn l1_charging_loop_passes() {
    assert!(!fires(&[("crates/foo/src/util.rs", L1_GOOD_CHARGE)], "L1"));
}

#[test]
fn l1_check_satisfies_too() {
    let src = r#"
pub fn wait_budgeted(budget: &Budget) -> Result<(), BudgetExceeded> {
    while pending() {
        budget.check(Stage::Cover)?;
    }
    Ok(())
}
"#;
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L1"));
}

#[test]
fn l1_inner_charge_covers_enclosing_loops() {
    let src = r#"
pub fn nest_budgeted(grid: &[Vec<u64>], budget: &Budget) -> Result<(), BudgetExceeded> {
    for row in grid {
        for &cell in row {
            budget.charge(Stage::Cover, 1)?;
            consume(cell);
        }
    }
    Ok(())
}
"#;
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L1"));
}

#[test]
fn l1_delegating_to_a_budgeted_fn_passes() {
    let src = r#"
pub fn outer_budgeted(xs: &[u64], budget: &Budget) -> Result<(), BudgetExceeded> {
    for &x in xs {
        inner_budgeted(x, budget)?;
    }
    Ok(())
}
"#;
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L1"));
}

#[test]
fn l1_non_budgeted_fn_is_out_of_scope() {
    let src = "pub fn sweep(xs: &[u64]) -> u64 { let mut a = 0; for &x in xs { a += x; } a }";
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L1"));
}

#[test]
fn l1_test_code_is_out_of_scope() {
    let src = format!("#[cfg(test)]\nmod tests {{\n{L1_BAD}\n}}");
    assert!(!fires(&[("crates/foo/src/util.rs", &src)], "L1"));
}

#[test]
fn l1_suppression_with_reason_covers_next_line() {
    let src = r#"
pub fn sweep_budgeted(xs: &[u64], budget: &Budget) -> u64 {
    let mut acc = 0;
    // lint: allow(L1) — O(n) accumulation, dominated by the charged phase
    for &x in xs {
        acc += x;
    }
    acc
}
"#;
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L1"));
}

#[test]
fn l1_reasonless_suppression_suppresses_nothing_and_is_reported() {
    let src = r#"
pub fn sweep_budgeted(xs: &[u64], budget: &Budget) -> u64 {
    let mut acc = 0;
    // lint: allow(L1)
    for &x in xs {
        acc += x;
    }
    acc
}
"#;
    let findings = run(&[("crates/foo/src/util.rs", src)]);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("missing its mandatory reason")));
}

#[test]
fn unknown_lint_code_in_suppression_is_reported() {
    let src = "// lint: allow(L9) — nope\nfn f() {}";
    let findings = run(&[("crates/foo/src/util.rs", src)]);
    assert!(findings.iter().any(|f| f.message.contains("unknown lint")));
}

#[test]
fn malformed_suppression_is_reported() {
    let src = "// lint: deny(L1) — wrong verb\nfn f() {}";
    let findings = run(&[("crates/foo/src/util.rs", src)]);
    assert!(findings.iter().any(|f| f.message.contains("malformed")));
}

// ---------------------------------------------------------------- L2

const DENY: &str = "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\n";

#[test]
fn l2_missing_crate_root_deny_fires() {
    let files = [("crates/foo/src/lib.rs", "pub fn f() {}")];
    assert_eq!(keys(&files), vec!["crates/foo/src/lib.rs:1 [L2]"]);
}

#[test]
fn l2_present_crate_root_deny_passes() {
    let files = [("crates/foo/src/lib.rs", DENY)];
    assert!(keys(&files).is_empty());
}

#[test]
fn l2_naked_unwrap_in_lib_code_fires() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    let files = [("crates/foo/src/util.rs", src)];
    assert_eq!(keys(&files), vec!["crates/foo/src/util.rs:1 [L2]"]);
}

#[test]
fn l2_justified_allow_passes() {
    let src = r#"
// Invariant, not an error path: callers checked Some above.
#[allow(clippy::unwrap_used)]
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L2"));
}

#[test]
fn l2_allow_without_justification_comment_fires() {
    let src = r#"
#[allow(clippy::unwrap_used)]
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    assert!(fires(&[("crates/foo/src/util.rs", src)], "L2"));
}

#[test]
fn l2_test_code_unwrap_is_out_of_scope() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}";
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L2"));
}

#[test]
fn l2_binary_code_is_out_of_scope() {
    let src = "fn main() { std::env::args().next().unwrap(); }";
    assert!(!fires(&[("crates/foo/src/bin/tool.rs", src)], "L2"));
    assert!(!fires(&[("crates/foo/src/main.rs", src)], "L2"));
}

// ---------------------------------------------------------------- L3

#[test]
fn l3_stray_thread_spawn_fires() {
    let src = "pub fn helper() { std::thread::spawn(|| {}); }";
    let files = [("crates/foo/src/util.rs", src)];
    assert_eq!(keys(&files), vec!["crates/foo/src/util.rs:1 [L3]"]);
}

#[test]
fn l3_thread_scope_outside_sanctioned_wrapper_fires() {
    let src = "pub fn helper() { std::thread::scope(|s| { let _ = s; }); }";
    assert!(fires(&[("crates/foo/src/util.rs", src)], "L3"));
}

#[test]
fn l3_sanctioned_wrapper_passes() {
    let src = r#"
pub fn par_map_indexed(count: usize) {
    std::thread::scope(|scope| {
        scope.spawn(|| count);
    });
}
"#;
    assert!(!fires(&[("crates/geom/src/grid.rs", src)], "L3"));
}

#[test]
fn l3_same_fn_name_elsewhere_still_fires() {
    // The sanction is a (file, fn) pair — the fn name alone is not enough.
    let src = "pub fn par_map_indexed() { std::thread::spawn(|| {}); }";
    assert!(fires(&[("crates/foo/src/util.rs", src)], "L3"));
}

#[test]
fn l3_suppression_with_reason_passes() {
    let src = r#"
pub fn helper() {
    // lint: allow(L3) — harness thread; a panic here must fail the run
    std::thread::spawn(|| {});
}
"#;
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L3"));
}

// ---------------------------------------------------------------- L4

#[test]
fn l4_clock_reachable_from_key_construction_fires() {
    let src = r#"
pub struct InstanceKey(u64);
pub fn key_of(x: u64) -> InstanceKey {
    InstanceKey(stamp(x))
}
fn stamp(x: u64) -> u64 {
    let _ = std::time::Instant::now();
    x
}
"#;
    let files = [("crates/core/src/cache.rs", src)];
    let findings = run(&files);
    assert!(
        findings
            .iter()
            .any(|f| f.lint.code() == "L4" && f.message.contains("Instant::now")),
        "{findings:?}"
    );
}

#[test]
fn l4_randomness_via_call_chain_fires_with_path() {
    let src = r#"
pub fn key_of(x: u64) -> InstanceKey { InstanceKey(middle(x)) }
fn middle(x: u64) -> u64 { entropy(x) }
fn entropy(x: u64) -> u64 { x ^ thread_rng() }
"#;
    let findings = run(&[("crates/core/src/cache.rs", src)]);
    let l4: Vec<_> = findings.iter().filter(|f| f.lint.code() == "L4").collect();
    assert_eq!(l4.len(), 1, "{findings:?}");
    assert!(l4[0].message.contains("key_of → middle → entropy"));
}

#[test]
fn l4_pure_key_construction_passes() {
    let src = r#"
pub struct InstanceKey(u64);
pub fn key_of(xs: &[u64]) -> InstanceKey {
    InstanceKey(xs.iter().copied().fold(17, |h, x| h ^ x))
}
"#;
    assert!(!fires(&[("crates/core/src/cache.rs", src)], "L4"));
}

#[test]
fn l4_clock_unreachable_from_roots_passes() {
    // A clock elsewhere in the workspace is fine — only reachability
    // from key construction is banned.
    let src = r#"
pub fn key_of(x: u64) -> InstanceKey { InstanceKey(x) }
pub fn profile() -> std::time::Instant { std::time::Instant::now() }
"#;
    assert!(!fires(&[("crates/core/src/cache.rs", src)], "L4"));
}

#[test]
fn l4_fails_closed_when_no_roots_found() {
    // If crates/core is in the scan but the root heuristic matches
    // nothing, the lint reports its own blindness instead of passing.
    let findings = run(&[("crates/core/src/cache.rs", "pub fn helper() {}")]);
    assert!(
        findings
            .iter()
            .any(|f| f.lint.code() == "L4" && f.message.contains("root heuristic")),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------- L5

#[test]
fn l5_bare_lock_unwrap_in_service_fires() {
    let src = r#"
pub fn tick(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
"#;
    assert!(fires(&[("crates/service/src/worker.rs", src)], "L5"));
}

#[test]
fn l5_poison_recovering_lock_passes() {
    let src = r#"
use std::sync::{Mutex, MutexGuard, PoisonError};
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
"#;
    assert!(!fires(&[("crates/service/src/worker.rs", src)], "L5"));
}

#[test]
fn l5_only_applies_to_the_service_crate() {
    let src = r#"
// Invariant, not an error path: single-threaded test helper.
#[allow(clippy::unwrap_used)]
pub fn tick(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
"#;
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L5"));
}

#[test]
fn l5_test_code_is_out_of_scope() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n}";
    assert!(!fires(&[("crates/service/src/worker.rs", src)], "L5"));
}

// ------------------------------------------------------- cross-cutting

#[test]
fn findings_are_sorted_and_display_as_path_line_code() {
    let files = [
        (
            "crates/zzz/src/util.rs",
            "pub fn helper() { std::thread::spawn(|| {}); }",
        ),
        ("crates/aaa/src/util.rs", L1_BAD),
    ];
    let findings = run(&files);
    assert_eq!(findings.len(), 2);
    assert_eq!(findings[0].path, "crates/aaa/src/util.rs");
    let shown = findings[1].to_string();
    assert!(
        shown.starts_with("crates/zzz/src/util.rs:1 [L3] "),
        "{shown}"
    );
}

#[test]
fn suppression_on_the_same_line_works() {
    let src = "pub fn helper() { std::thread::spawn(|| {}); } // lint: allow(L3) — fixture";
    assert!(!fires(&[("crates/foo/src/util.rs", src)], "L3"));
}

#[test]
fn suppression_of_one_lint_does_not_cover_another() {
    let src = r#"
pub fn sweep_budgeted(xs: &[u64], budget: &Budget) -> u64 {
    let mut acc = 0;
    // lint: allow(L3) — wrong lint id for this site
    for &x in xs {
        acc += x;
    }
    acc
}
"#;
    assert!(fires(&[("crates/foo/src/util.rs", src)], "L1"));
}
