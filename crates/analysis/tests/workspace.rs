//! Meta-tests over the real workspace tree: the lexer must understand
//! every construct the workspace actually uses, and the tree itself must
//! stay lint-clean (this is the same gate CI runs via the binary).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    aapsm_analysis::find_workspace_root(&manifest).expect("analysis crate lives in the workspace")
}

#[test]
fn every_workspace_file_lexes_with_zero_unknown_tokens() {
    let root = workspace_root();
    let paths = aapsm_analysis::collect_workspace_files(&root).expect("walk workspace");
    assert!(
        paths.len() > 50,
        "workspace walk looks wrong: only {} files",
        paths.len()
    );
    let mut bad = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).expect("read source");
        for tok in aapsm_analysis::lexer::lex(&text) {
            if tok.kind == aapsm_analysis::lexer::TokenKind::Unknown {
                bad.push(format!(
                    "{}:{} unknown token `{}`",
                    path.display(),
                    tok.line,
                    tok.text(&text)
                ));
            }
        }
    }
    assert!(
        bad.is_empty(),
        "the lexer must learn these constructs before the lints can be \
         trusted:\n{}",
        bad.join("\n")
    );
}

#[test]
fn lexed_tokens_cover_only_source_bytes_in_order() {
    // Structural sanity on real sources: spans are ordered, disjoint,
    // in-bounds, and the gaps between them are pure whitespace.
    let root = workspace_root();
    let paths = aapsm_analysis::collect_workspace_files(&root).expect("walk workspace");
    for path in &paths {
        let text = std::fs::read_to_string(path).expect("read source");
        let mut prev_end = 0usize;
        for tok in aapsm_analysis::lexer::lex(&text) {
            assert!(
                tok.start >= prev_end,
                "{}: overlapping tokens",
                path.display()
            );
            assert!(tok.end <= text.len());
            assert!(
                text[prev_end..tok.start].chars().all(char::is_whitespace),
                "{}: dropped non-whitespace bytes before offset {}",
                path.display(),
                tok.start
            );
            prev_end = tok.end;
        }
        assert!(
            text[prev_end..].chars().all(char::is_whitespace),
            "{}: dropped non-whitespace trailing bytes",
            path.display()
        );
    }
}

#[test]
fn the_workspace_tree_is_lint_clean() {
    let report = aapsm_analysis::analyze_workspace(&workspace_root()).expect("analyze workspace");
    assert!(
        report.files > 50,
        "workspace walk looks wrong: only {} files",
        report.files
    );
    let shown: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        shown.is_empty(),
        "the tree must stay analyzer-clean:\n{}",
        shown.join("\n")
    );
}
