//! # aapsm-analysis — workspace invariant analyzer
//!
//! An offline, pure-std static-analysis pass over this workspace's own
//! source, enforcing the project-specific discipline that clippy cannot
//! express. The contracts it machine-checks are the ones ROADMAP.md
//! states in prose — budgets charged inside every long loop, panic
//! isolation never bypassed, cache keys pure, lock poison handled — and
//! that code review has already let slip once (PR 8's unbudgeted
//! Dijkstra phase is the founding bug of lint L1).
//!
//! ## Lint catalog
//!
//! | id | discipline |
//! |----|------------|
//! | L1 | every loop in a `*_budgeted` fn charges or checks its `Budget` |
//! | L2 | non-test `unwrap()`/`expect()` in lib code: crate-root deny + justified `#[allow]` |
//! | L3 | `std::thread::{spawn,scope,Builder}` only inside the sanctioned wrappers |
//! | L4 | no clock/randomness reachable from `SolveCache` key construction |
//! | L5 | `.lock()` in `crates/service` flows through the poison-recovering helper |
//!
//! See `crates/analysis/README.md` for the full catalog, rationale, and
//! how to add a lint.
//!
//! ## Suppression
//!
//! A finding is suppressed by a line comment on the same line or the
//! line directly above it:
//!
//! ```text
//! // lint: allow(L3) — bench harness; a worker panic must fail the run
//! ```
//!
//! The reason after the dash is mandatory: a suppression without one is
//! itself a finding. Suppressions are per-line and per-lint — there is
//! no file- or crate-wide escape hatch by design.
//!
//! ## Running
//!
//! ```text
//! cargo run -p aapsm-analysis -- --workspace
//! ```
//!
//! prints findings as `file:line [Lx] message` and exits nonzero when
//! any unsuppressed finding remains. CI runs this beside clippy/fmt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod lexer;
pub mod lints;
pub mod scanner;

use scanner::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// The lints, by catalog id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Budget discipline in `*_budgeted` functions.
    L1,
    /// Unwrap/expect discipline in lib code.
    L2,
    /// Thread spawn/scope confinement.
    L3,
    /// Cache-key purity.
    L4,
    /// Service lock discipline.
    L5,
}

impl Lint {
    pub fn code(self) -> &'static str {
        match self {
            Lint::L1 => "L1",
            Lint::L2 => "L2",
            Lint::L3 => "L3",
            Lint::L4 => "L4",
            Lint::L5 => "L5",
        }
    }

    pub fn from_code(code: &str) -> Option<Lint> {
        match code {
            "L1" => Some(Lint::L1),
            "L2" => Some(Lint::L2),
            "L3" => Some(Lint::L3),
            "L4" => Some(Lint::L4),
            "L5" => Some(Lint::L5),
            _ => None,
        }
    }

    /// One-line description, for `--list`.
    pub fn describe(self) -> &'static str {
        match self {
            Lint::L1 => "every loop in a *_budgeted fn must charge or check its Budget",
            Lint::L2 => {
                "non-test unwrap()/expect() in lib code needs the crate-root deny \
                 and a justified #[allow]"
            }
            Lint::L3 => {
                "std::thread::{spawn,scope,Builder} only inside par_map_indexed \
                 and the service worker pool"
            }
            Lint::L4 => "no clock or randomness reachable from SolveCache key construction",
            Lint::L5 => ".lock() in crates/service must use the poison-recovering helper",
        }
    }

    pub fn all() -> [Lint; 5] {
        [Lint::L1, Lint::L2, Lint::L3, Lint::L4, Lint::L5]
    }
}

/// One lint finding, printable as `file:line [Lx] message`.
#[derive(Clone, Debug)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub lint: Lint,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.path,
            self.line,
            self.lint.code(),
            self.message
        )
    }
}

/// A parsed `// lint: allow(Lx) — reason` comment.
struct Suppression {
    line: u32,
    lint: Lint,
    /// `false` when the mandatory reason is missing.
    has_reason: bool,
}

/// Extracts suppression comments from a file. Malformed suppressions
/// (unknown lint id, missing reason) are reported as findings so they
/// cannot silently fail open *or* closed.
fn suppressions(file: &SourceFile, findings: &mut Vec<Finding>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for tok in &file.tokens {
        if tok.kind != lexer::TokenKind::LineComment {
            continue;
        }
        let text = tok.text(&file.text).trim_start_matches('/').trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else {
            findings.push(Finding {
                path: file.path.clone(),
                line: tok.line,
                lint: Lint::L1,
                message: format!(
                    "malformed lint comment (expected `lint: allow(Lx) — reason`): `{text}`"
                ),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                path: file.path.clone(),
                line: tok.line,
                lint: Lint::L1,
                message: "malformed lint comment: unterminated allow(…)".to_string(),
            });
            continue;
        };
        let code = rest[..close].trim();
        let Some(lint) = Lint::from_code(code) else {
            findings.push(Finding {
                path: file.path.clone(),
                line: tok.line,
                lint: Lint::L1,
                message: format!("unknown lint `{code}` in suppression"),
            });
            continue;
        };
        // The reason: anything nonempty after the closing paren and an
        // optional `—`/`-`/`:` separator.
        let reason = rest[close + 1..]
            .trim()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        out.push(Suppression {
            line: tok.line,
            lint,
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// The result of analyzing a set of files.
pub struct Report {
    pub findings: Vec<Finding>,
    pub files: usize,
}

/// Analyzes a set of `(workspace-relative path, contents)` pairs: runs
/// every per-file lint, the workspace-level lints (crate-root deny
/// presence, cache-key purity), and applies suppressions.
pub fn analyze(sources: &[(String, String)]) -> Report {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, t)| SourceFile::parse(p, t))
        .collect();
    let mut findings = Vec::new();
    let mut sups: Vec<Vec<Suppression>> = Vec::new();
    for file in &files {
        sups.push(suppressions(file, &mut findings));
        lints::l1_budget::run(file, &mut findings);
        lints::l2_unwrap::run(file, &mut findings);
        lints::l3_threads::run(file, &mut findings);
        lints::l5_locks::run(file, &mut findings);
    }
    lints::l2_unwrap::run_workspace(&files, &mut findings);
    lints::l4_cache_purity::run(&files, &mut findings);

    // Apply suppressions: a justified suppression covers findings of its
    // lint on its own line and the next line; one without a reason
    // covers nothing and is reported.
    let mut kept = Vec::new();
    for f in findings {
        let sup = files
            .iter()
            .position(|file| file.path == f.path)
            .and_then(|fi| {
                sups[fi]
                    .iter()
                    .find(|s| s.lint == f.lint && (s.line == f.line || s.line + 1 == f.line))
            });
        match sup {
            Some(s) if s.has_reason => {}
            Some(s) => {
                kept.push(Finding {
                    path: f.path.clone(),
                    line: s.line,
                    lint: f.lint,
                    message: format!(
                        "suppression of [{}] is missing its mandatory reason \
                         (`lint: allow({}) — why this is sound`)",
                        f.lint.code(),
                        f.lint.code()
                    ),
                });
            }
            None => kept.push(f),
        }
    }
    kept.sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    kept.dedup_by(|a, b| {
        a.path == b.path && a.line == b.line && a.lint == b.lint && a.message == b.message
    });
    Report {
        findings: kept,
        files: files.len(),
    }
}

/// Collects the workspace source files the analyzer covers: the root
/// facade's `src/` and every `crates/*/src/` tree, recursively.
///
/// Excluded by design: `support/` (vendored offline stand-ins for
/// third-party crates — not this project's code), `target/`, crate
/// `tests/` directories and `examples/` (test and documentation code is
/// outside the production discipline the lints gate; `#[cfg(test)]`
/// modules inside `src/` are skipped span-wise instead).
pub fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for dir in entries {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads and analyzes the workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the source tree.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let paths = collect_workspace_files(root)?;
    let mut sources = Vec::with_capacity(paths.len());
    for p in &paths {
        let text = std::fs::read_to_string(p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, text));
    }
    Ok(analyze(&sources))
}

/// Locates the workspace root: ascends from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
