//! CLI for the workspace invariant analyzer.
//!
//! ```text
//! aapsm-analysis --workspace     # analyze the enclosing cargo workspace
//! aapsm-analysis --list          # print the lint catalog
//! aapsm-analysis <dir-or-root>   # analyze an explicit workspace root
//! ```
//!
//! Findings print as `file:line [Lx] message`; the process exits 1 when
//! any unsuppressed finding remains, 2 on usage/I/O errors.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for lint in aapsm_analysis::Lint::all() {
            println!("{}  {}", lint.code(), lint.describe());
        }
        return ExitCode::SUCCESS;
    }
    let root: Option<PathBuf> = match args.iter().find(|a| !a.starts_with("--")) {
        Some(path) => Some(PathBuf::from(path)),
        None if args.iter().any(|a| a == "--workspace") => std::env::current_dir()
            .ok()
            .and_then(|d| aapsm_analysis::find_workspace_root(&d)),
        None => None,
    };
    let Some(root) = root else {
        eprintln!("usage: aapsm-analysis --workspace | aapsm-analysis <workspace-root> | --list");
        return ExitCode::from(2);
    };
    match aapsm_analysis::analyze_workspace(&root) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            if report.findings.is_empty() {
                eprintln!(
                    "aapsm-analysis: {} files analyzed, no findings",
                    report.files
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "aapsm-analysis: {} files analyzed, {} finding(s)",
                    report.files,
                    report.findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("aapsm-analysis: {e}");
            ExitCode::from(2)
        }
    }
}
