//! **L4 — cache-key purity.** `SolveCache` keys are canonical instance
//! bytes: equal keys *are* equal instances, and a hit is served
//! unconditionally. That is only sound if key construction is a pure
//! function of the instance — no wall clock, no randomness (the PR 9
//! flank-weight bug was exactly a key input that depended on unrelated
//! state). This lint walks the workspace call graph from the
//! key-construction roots and reports any reachable clock or randomness
//! source.
//!
//! Roots: every non-test lib function whose *signature* mentions
//! `InstanceKey` (the key type — constructors, lookups, commits), plus
//! `flank_weight_for` (the one weight that feeds key bytes from outside
//! the instance). Call edges are resolved by callee name across all lib
//! sources — deliberately conservative: a name collision can only
//! widen the reachable set, never hide a source.
//!
//! Banned reachable tokens: `Instant::now`, `SystemTime`, `thread_rng`,
//! `from_entropy`, `random`, `gen_range`, `gen_bool`.

use crate::lexer::TokenKind;
use crate::lints::is_lib_code;
use crate::scanner::{FnItem, SourceFile};
use crate::{Finding, Lint};
use std::collections::{HashMap, HashSet, VecDeque};

/// Identifier spelled in key-type position that makes a fn a root.
const KEY_TYPE: &str = "InstanceKey";
/// Extra root functions, by name.
const ROOT_FNS: &[&str] = &["flank_weight_for"];
/// Identifiers that taint a function.
const BANNED: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "random",
    "gen_range",
    "gen_bool",
];

struct Node<'a> {
    file: &'a SourceFile,
    item: &'a FnItem,
    callees: HashSet<String>,
    /// `Some((line, what))` when the body touches a banned source.
    taint: Option<(u32, String)>,
    is_root: bool,
}

fn signature_mentions_key(file: &SourceFile, item: &FnItem) -> bool {
    let sig_end = item.body.map_or(usize::MAX, |(s, _)| s);
    file.code_in_span((item.attrs_start, sig_end)).any(|ci| {
        let tok = &file.tokens[file.code[ci]];
        tok.kind == TokenKind::Ident && tok.text(&file.text) == KEY_TYPE
    })
}

fn inspect<'a>(file: &'a SourceFile, item: &'a FnItem) -> Node<'a> {
    let mut callees = HashSet::new();
    let mut taint = None;
    if let Some(body) = item.body {
        let range = file.code_in_span(body);
        let code = &file.code;
        for ci in range {
            let tok = &file.tokens[code[ci]];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let text = tok.text(&file.text);
            if taint.is_none() {
                if BANNED.contains(&text) {
                    taint = Some((tok.line, format!("`{text}`")));
                } else if text == "SystemTime" {
                    taint = Some((tok.line, "`SystemTime`".to_string()));
                } else if text == "Instant"
                    && ci + 3 < code.len()
                    && file.tokens[code[ci + 1]].text(&file.text) == ":"
                    && file.tokens[code[ci + 2]].text(&file.text) == ":"
                    && file.tokens[code[ci + 3]].text(&file.text) == "now"
                {
                    taint = Some((tok.line, "`Instant::now`".to_string()));
                }
            }
            let is_call = ci + 1 < code.len() && file.tokens[code[ci + 1]].text(&file.text) == "(";
            if is_call
                && !matches!(
                    text,
                    "if" | "while" | "for" | "match" | "return" | "in" | "move"
                )
            {
                callees.insert(text.to_string());
            }
        }
    }
    let is_root = ROOT_FNS.contains(&item.name.as_str()) || signature_mentions_key(file, item);
    Node {
        file,
        item,
        callees,
        taint,
        is_root,
    }
}

pub fn run(files: &[SourceFile], out: &mut Vec<Finding>) {
    let mut nodes: Vec<Node<'_>> = Vec::new();
    for file in files {
        if !is_lib_code(&file.path) {
            continue;
        }
        for item in &file.fns {
            if item.body.is_some_and(|(s, _)| file.in_test(s)) {
                continue;
            }
            nodes.push(inspect(file, item));
        }
    }
    // Fail closed: if the scan covers `crates/core` (where the key type
    // lives) but the root heuristic matched nothing, the lint has gone
    // blind — report that instead of passing vacuously.
    if nodes.iter().all(|n| !n.is_root) && files.iter().any(|f| f.path.starts_with("crates/core/"))
    {
        out.push(Finding {
            path: "crates/core/src/bipartize.rs".to_string(),
            line: 1,
            lint: Lint::L4,
            message: format!(
                "no SolveCache key-construction roots found (no lib fn signature \
                 mentions `{KEY_TYPE}` and none is named {ROOT_FNS:?}) — update the \
                 root heuristic in l4_cache_purity.rs"
            ),
        });
        return;
    }
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.item.name.as_str()).or_default().push(i);
    }

    // BFS from the roots; remember one parent per visited node so the
    // finding can show a concrete call path.
    let mut parent: HashMap<usize, Option<usize>> = HashMap::new();
    let mut queue = VecDeque::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.is_root {
            parent.insert(i, None);
            queue.push_back(i);
        }
    }
    let mut reported: HashSet<usize> = HashSet::new();
    while let Some(i) = queue.pop_front() {
        if let Some((line, what)) = &nodes[i].taint {
            if reported.insert(i) {
                let mut chain = vec![nodes[i].item.name.clone()];
                let mut cur = i;
                while let Some(&Some(p)) = parent.get(&cur) {
                    chain.push(nodes[p].item.name.clone());
                    cur = p;
                }
                chain.reverse();
                out.push(Finding {
                    path: nodes[i].file.path.clone(),
                    line: *line,
                    lint: Lint::L4,
                    message: format!(
                        "{what} is reachable from SolveCache key construction \
                         (via {}) — keys must stay a pure function of the \
                         canonical instance bytes",
                        chain.join(" → ")
                    ),
                });
            }
        }
        let callee_names: Vec<String> = nodes[i].callees.iter().cloned().collect();
        for name in callee_names {
            if let Some(targets) = by_name.get(name.as_str()) {
                for &t in targets {
                    if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(t) {
                        e.insert(Some(i));
                        queue.push_back(t);
                    }
                }
            }
        }
    }
}
