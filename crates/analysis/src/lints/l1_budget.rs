//! **L1 — budget discipline.** Every loop in a `*_budgeted` function
//! must charge or check its `Budget`, directly or by delegating to
//! another `*_budgeted` function. This is the PR 8 bug class made
//! structurally impossible: `solve_shortest_path_budgeted` shipped with
//! a Dijkstra phase whose heap loop never touched the budget, so a
//! deadline could not interrupt the dominant cost of the solve.
//!
//! A loop satisfies the lint when its body (nested code included)
//! contains a call to `charge(…)`, `check(…)`, or any `*_budgeted`
//! function. Loops that are provably tiny (bounded preambles, fixed
//! small iteration counts) are suppressed per line with a reason — the
//! justification is part of the contract, not an escape hatch.

use crate::lexer::TokenKind;
use crate::scanner::SourceFile;
use crate::{Finding, Lint};

/// Whether the code tokens of `span` contain a budget charge/check or a
/// delegation to another budgeted function.
fn span_touches_budget(file: &SourceFile, span: (usize, usize)) -> bool {
    let range = file.code_in_span(span);
    for ci in range.clone() {
        let tok = &file.tokens[file.code[ci]];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(&file.text);
        let next_is_call =
            ci + 1 < file.code.len() && file.tokens[file.code[ci + 1]].text(&file.text) == "(";
        if next_is_call && (text == "charge" || text == "check" || text.ends_with("_budgeted")) {
            return true;
        }
    }
    false
}

pub fn run(file: &SourceFile, out: &mut Vec<Finding>) {
    for f in &file.fns {
        if !f.name.ends_with("_budgeted") {
            continue;
        }
        let Some(body) = f.body else { continue };
        if file.in_test(body.0) {
            continue;
        }
        for lp in &f.loops {
            if span_touches_budget(file, lp.body) {
                continue;
            }
            out.push(Finding {
                path: file.path.clone(),
                line: lp.line,
                lint: Lint::L1,
                message: format!(
                    "loop in `{}` neither charges nor checks its Budget — a deadline \
                     or work cap cannot interrupt it (the PR 8 Dijkstra bug class)",
                    f.name
                ),
            });
        }
    }
}
