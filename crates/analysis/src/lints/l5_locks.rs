//! **L5 — lock discipline in `crates/service`.** A worker panic must
//! never leave the service wedged on a poisoned mutex, so every
//! `.lock()` flows through the poison-recovering helper
//! (`lock()` in `service.rs`, which ends in
//! `unwrap_or_else(PoisonError::into_inner)`) — never a bare
//! `.lock().unwrap()`, which would convert one crashed request into a
//! permanently dead service.
//!
//! Mechanically: a `.lock(` call in service lib code is accepted only on
//! a line that also recovers from `PoisonError`; everything else is a
//! finding. (The helper is total — callers have no reason to touch
//! `Mutex::lock` directly.)

use crate::lexer::TokenKind;
use crate::scanner::SourceFile;
use crate::{Finding, Lint};

pub fn run(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.path.starts_with("crates/service/src/") {
        return;
    }
    let code = &file.code;
    let text_at = |ci: usize| file.tokens[code[ci]].text(&file.text);
    for ci in 1..code.len() {
        let tok = &file.tokens[code[ci]];
        if tok.kind != TokenKind::Ident
            || tok.text(&file.text) != "lock"
            || text_at(ci - 1) != "."
            || ci + 1 >= code.len()
            || text_at(ci + 1) != "("
            || file.in_test(tok.start)
        {
            continue;
        }
        let recovers = file
            .code
            .iter()
            .map(|&i| &file.tokens[i])
            .any(|t| t.line == tok.line && t.text(&file.text) == "PoisonError");
        if !recovers {
            out.push(Finding {
                path: file.path.clone(),
                line: tok.line,
                lint: Lint::L5,
                message: "`.lock()` outside the poison-recovering helper — use \
                          `lock(&mutex)` so a panicking holder cannot wedge the service"
                    .to_string(),
            });
        }
    }
}
