//! The lint passes. Each lint is one module with a `run` entry point;
//! per-file lints take a [`SourceFile`](crate::scanner::SourceFile),
//! workspace lints take the whole file set. See the crate docs for the
//! catalog and `README.md` for how to add a lint.

pub mod l1_budget;
pub mod l2_unwrap;
pub mod l3_threads;
pub mod l4_cache_purity;
pub mod l5_locks;

/// Whether a workspace-relative path is library (non-binary) source:
/// under some `src/`, not under `src/bin/`, and not a `main.rs`.
pub(crate) fn is_lib_code(path: &str) -> bool {
    (path.starts_with("src/") || path.contains("/src/"))
        && !path.contains("/src/bin/")
        && !path.ends_with("/main.rs")
        && path != "src/main.rs"
}
