//! **L2 — unwrap/expect discipline.** Lib code must not panic on
//! recoverable paths. Two machine-checked halves:
//!
//! 1. *Crate root deny* (workspace pass): every crate root `lib.rs`
//!    carries `#![cfg_attr(not(test), deny(clippy::unwrap_used,
//!    clippy::expect_used))]`, so clippy rejects new bare sites.
//! 2. *Justified allows* (per-file pass): every non-test `.unwrap()` /
//!    `.expect(…)` in lib code must sit under an
//!    `#[allow(clippy::unwrap_used/expect_used)]` that has an adjacent
//!    comment saying *why* the panic is impossible (the workspace idiom:
//!    `// Invariant, not an error path: …` directly above the attribute).
//!
//! Together with the clippy deny this means a panic site cannot appear
//! without a written proof obligation next to it.

use crate::lexer::TokenKind;
use crate::lints::is_lib_code;
use crate::scanner::SourceFile;
use crate::{Finding, Lint};

/// An `allow(… unwrap_used/expect_used …)` attribute occurrence.
struct AllowSite {
    start: usize,
    line: u32,
    /// A comment sits on the attribute's line or the line above it.
    justified: bool,
}

fn collect_allow_sites(file: &SourceFile) -> Vec<AllowSite> {
    let mut out = Vec::new();
    let code = &file.code;
    for ci in 0..code.len() {
        let tok = &file.tokens[code[ci]];
        if tok.kind != TokenKind::Ident || tok.text(&file.text) != "allow" {
            continue;
        }
        if ci + 1 >= code.len() || file.tokens[code[ci + 1]].text(&file.text) != "(" {
            continue;
        }
        // Scan the parenthesized argument for the two clippy lints.
        let mut depth = 0i32;
        let mut relevant = false;
        for &tok_idx in &code[(ci + 1)..] {
            let t = file.tokens[tok_idx].text(&file.text);
            match t {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "unwrap_used" | "expect_used" => relevant = true,
                _ => {}
            }
        }
        if !relevant {
            continue;
        }
        let line = tok.line;
        let justified = file.tokens.iter().any(|t| {
            matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && (t.line + 1 == line || t.line == line)
        });
        out.push(AllowSite {
            start: tok.start,
            line,
            justified,
        });
    }
    out
}

pub fn run(file: &SourceFile, out: &mut Vec<Finding>) {
    if !is_lib_code(&file.path) {
        return;
    }
    let allows = collect_allow_sites(file);
    for a in &allows {
        if !a.justified && !file.in_test(a.start) {
            out.push(Finding {
                path: file.path.clone(),
                line: a.line,
                lint: Lint::L2,
                message: "allow(clippy::unwrap_used/expect_used) without an adjacent \
                          justification comment — say why the panic is impossible"
                    .to_string(),
            });
        }
    }
    let code = &file.code;
    for ci in 1..code.len() {
        let tok = &file.tokens[code[ci]];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(&file.text);
        if text != "unwrap" && text != "expect" {
            continue;
        }
        if file.tokens[code[ci - 1]].text(&file.text) != "." {
            continue;
        }
        if ci + 1 >= code.len() || file.tokens[code[ci + 1]].text(&file.text) != "(" {
            continue;
        }
        if file.in_test(tok.start) {
            continue;
        }
        // Covered when a relevant allow attribute precedes the site
        // within its enclosing item (function attributes included).
        let covered = file.enclosing_fn(tok.start).is_some_and(|f| {
            allows
                .iter()
                .any(|a| a.start >= f.attrs_start && a.start < tok.start)
        });
        if !covered {
            out.push(Finding {
                path: file.path.clone(),
                line: tok.line,
                lint: Lint::L2,
                message: format!(
                    "non-test `{text}()` in lib code without \
                     #[allow(clippy::{text}_used)] + justification — return a \
                     structured error or document the invariant"
                ),
            });
        }
    }
}

/// Crate roots that must carry the deny attribute: the root facade and
/// every `crates/*/src/lib.rs` in the analyzed set.
pub fn run_workspace(files: &[SourceFile], out: &mut Vec<Finding>) {
    for file in files {
        if file.path != "src/lib.rs" && !(file.path.ends_with("/src/lib.rs")) {
            continue;
        }
        let mut saw = (false, false, false);
        for &i in &file.code {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            match tok.text(&file.text) {
                "deny" => saw.0 = true,
                "unwrap_used" => saw.1 = true,
                "expect_used" => saw.2 = true,
                _ => {}
            }
        }
        if !(saw.0 && saw.1 && saw.2) {
            out.push(Finding {
                path: file.path.clone(),
                line: 1,
                lint: Lint::L2,
                message: "crate root is missing #![cfg_attr(not(test), \
                          deny(clippy::unwrap_used, clippy::expect_used))]"
                    .to_string(),
            });
        }
    }
}
