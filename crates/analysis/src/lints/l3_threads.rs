//! **L3 — thread confinement.** Worker panics are isolated per item by
//! `aapsm_geom::par_map_indexed` (catch, retry once, structured
//! `WorkerPanic`) and by the service worker pool's crash-only sessions.
//! That guarantee only holds if nobody spawns threads any other way, so
//! `std::thread::spawn`, `std::thread::scope`, `std::thread::Builder`
//! and `.spawn(…)` method calls are confined to the two sanctioned
//! wrappers:
//!
//! - `par_map_indexed` in `crates/geom/src/grid.rs`
//! - `DetectionService::start` in `crates/service/src/service.rs`
//!
//! Anything else — however innocent — bypasses panic isolation and the
//! `parallelism` knob, and must either go through the wrappers or carry
//! a per-line suppression with a reason (the bench harness does: a
//! worker panic there *should* fail the run).

use crate::lexer::TokenKind;
use crate::scanner::SourceFile;
use crate::{Finding, Lint};

const SANCTIONED: &[(&str, &str)] = &[
    ("crates/geom/src/grid.rs", "par_map_indexed"),
    ("crates/service/src/service.rs", "start"),
];

fn sanctioned(file: &SourceFile, offset: usize) -> bool {
    SANCTIONED.iter().any(|&(path, fn_name)| {
        file.path == path && file.enclosing_fn(offset).is_some_and(|f| f.name == fn_name)
    })
}

pub fn run(file: &SourceFile, out: &mut Vec<Finding>) {
    let code = &file.code;
    let text_at = |ci: usize| file.tokens[code[ci]].text(&file.text);
    for ci in 0..code.len() {
        let tok = &file.tokens[code[ci]];
        if tok.kind != TokenKind::Ident || file.in_test(tok.start) {
            continue;
        }
        let construct = match tok.text(&file.text) {
            // `thread::spawn`, `thread::scope`, `thread::Builder` paths.
            "thread"
                if ci + 3 < code.len()
                    && text_at(ci + 1) == ":"
                    && text_at(ci + 2) == ":"
                    && matches!(text_at(ci + 3), "spawn" | "scope" | "Builder") =>
            {
                Some(format!("std::thread::{}", text_at(ci + 3)))
            }
            // `.spawn(…)` method calls (scope handles, builders).
            "spawn"
                if ci > 0
                    && text_at(ci - 1) == "."
                    && ci + 1 < code.len()
                    && text_at(ci + 1) == "(" =>
            {
                Some(".spawn()".to_string())
            }
            _ => None,
        };
        let Some(construct) = construct else { continue };
        if sanctioned(file, tok.start) {
            continue;
        }
        out.push(Finding {
            path: file.path.clone(),
            line: tok.line,
            lint: Lint::L3,
            message: format!(
                "`{construct}` outside the sanctioned wrappers (par_map_indexed / \
                 the service worker pool) bypasses panic isolation"
            ),
        });
    }
}
