//! Item/block structure on top of the lexer: function items (name,
//! visibility, attribute block, brace-matched body), the loops inside
//! each body, and the `#[cfg(test)]` / `#[test]` spans every lint skips.
//!
//! This is deliberately not a parser — no expressions, no types. The
//! lints need exactly three structural facts: *which function am I in*,
//! *where does this loop's body end*, and *is this token test-only code*.
//! Everything is computed from the comment-free token sequence, so
//! braces inside strings or comments can never unbalance a span.

use crate::lexer::{lex, Token, TokenKind};

/// One `fn` item (free function or method; nested functions get their
/// own entry).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Byte offset where the item's contiguous attribute block starts
    /// (equals the `fn`/`pub` offset when there are no attributes).
    pub attrs_start: usize,
    /// Byte span of the `{ … }` body; `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// Loops lexically inside the body, in source order.
    pub loops: Vec<LoopItem>,
}

/// A `for`/`while`/`loop` construct inside a function body.
#[derive(Debug)]
pub struct LoopItem {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Byte span of the loop's `{ … }` body.
    pub body: (usize, usize),
}

/// A lexed and structurally scanned source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub text: String,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens.
    pub code: Vec<usize>,
    pub fns: Vec<FnItem>,
    /// Byte spans of test-only items (`#[cfg(test)]` / `#[test]`),
    /// attribute included.
    pub test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let mut file = SourceFile {
            path: path.to_string(),
            text: text.to_string(),
            tokens,
            code,
            fns: Vec::new(),
            test_spans: Vec::new(),
        };
        file.scan_test_spans();
        file.scan_fns();
        file
    }

    /// Text of the code token at code-index `ci`.
    pub fn code_text(&self, ci: usize) -> &str {
        self.tokens[self.code[ci]].text(&self.text)
    }

    fn code_kind(&self, ci: usize) -> TokenKind {
        self.tokens[self.code[ci]].kind
    }

    fn code_tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Whether a byte offset falls inside a test-only span.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// The innermost function whose body contains `offset`.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| offset >= s && offset < e))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
    }

    /// Code-token indices whose byte offsets fall inside `span`.
    pub fn code_in_span(&self, span: (usize, usize)) -> std::ops::Range<usize> {
        let lo = self
            .code
            .partition_point(|&i| self.tokens[i].start < span.0);
        let hi = self
            .code
            .partition_point(|&i| self.tokens[i].start < span.1);
        lo..hi
    }

    /// From the code token at `ci` (exclusive), finds the span of the
    /// next brace block at paren/bracket depth 0 — the body of a
    /// function or loop whose header starts at `ci`. Returns byte span.
    fn next_block(&self, ci: usize) -> Option<(usize, usize)> {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut j = ci + 1;
        while j < self.code.len() {
            match (self.code_kind(j), self.code_text(j)) {
                (TokenKind::Punct, "(") => paren += 1,
                (TokenKind::Punct, ")") => paren -= 1,
                (TokenKind::Punct, "[") => bracket += 1,
                (TokenKind::Punct, "]") => bracket -= 1,
                (TokenKind::Punct, ";") if paren == 0 && bracket == 0 => return None,
                (TokenKind::Punct, "{") if paren == 0 && bracket == 0 => {
                    let start = self.code_tok(j).start;
                    let end = self.match_brace(j)?;
                    return Some((start, end));
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Given the code index of a `{`, returns the byte offset one past
    /// its matching `}`.
    fn match_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in open..self.code.len() {
            if self.code_kind(j) == TokenKind::Punct {
                match self.code_text(j) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(self.code_tok(j).end);
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Marks `#[cfg(test)]` and `#[test]` items (attribute through the
    /// end of the following item) as test spans.
    fn scan_test_spans(&mut self) {
        let mut spans = Vec::new();
        let mut ci = 0;
        while ci < self.code.len() {
            if self.code_text(ci) == "#"
                && ci + 1 < self.code.len()
                && self.code_text(ci + 1) == "["
            {
                if let Some(close) = self.match_bracket(ci + 1) {
                    if self.attr_is_test(ci + 1, close) {
                        let start = self.code_tok(ci).start;
                        let end = self.item_end_after(close);
                        spans.push((start, end));
                        // Continue past the whole item: nested attrs
                        // inside it need no separate span.
                        ci = self.code.partition_point(|&i| self.tokens[i].start < end);
                        continue;
                    }
                    ci = close + 1;
                    continue;
                }
            }
            ci += 1;
        }
        self.test_spans = spans;
    }

    /// Given the code index of a `[`, returns the code index of its
    /// matching `]`.
    fn match_bracket(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in open..self.code.len() {
            if self.code_kind(j) == TokenKind::Punct {
                match self.code_text(j) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Whether the attribute tokens in code range (`open`, `close`)
    /// exclusive mark test-only code: `#[test]`, or a `cfg(…)` whose
    /// argument mentions `test`.
    fn attr_is_test(&self, open: usize, close: usize) -> bool {
        let inner: Vec<&str> = ((open + 1)..close).map(|ci| self.code_text(ci)).collect();
        if inner == ["test"] {
            return true;
        }
        // `cfg(…)` whose argument mentions `test` outside a `not(…)`:
        // `#[cfg(test)]`, `#[cfg(any(test, fuzzing))]` are test-only;
        // `#[cfg(not(test))]` is production code.
        if inner.first() != Some(&"cfg") {
            return false;
        }
        let mut not_depth: Vec<i32> = Vec::new(); // paren depths owned by a `not`
        let mut depth = 0i32;
        let mut prev_was_not = false;
        for &t in &inner {
            match t {
                "(" => {
                    depth += 1;
                    if prev_was_not {
                        not_depth.push(depth);
                    }
                }
                ")" => {
                    if not_depth.last() == Some(&depth) {
                        not_depth.pop();
                    }
                    depth -= 1;
                }
                "test" if not_depth.is_empty() => return true,
                _ => {}
            }
            prev_was_not = t == "not";
        }
        false
    }

    /// End offset of the item following an attribute (code index of its
    /// closing `]`): skips further attribute groups, then runs to the
    /// end of a brace block or a top-level `;`.
    fn item_end_after(&self, attr_close: usize) -> usize {
        let mut ci = attr_close + 1;
        // Skip stacked attributes.
        while ci + 1 < self.code.len() && self.code_text(ci) == "#" && self.code_text(ci + 1) == "["
        {
            match self.match_bracket(ci + 1) {
                Some(close) => ci = close + 1,
                None => break,
            }
        }
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while ci < self.code.len() {
            match (self.code_kind(ci), self.code_text(ci)) {
                (TokenKind::Punct, "(") => paren += 1,
                (TokenKind::Punct, ")") => paren -= 1,
                (TokenKind::Punct, "[") => bracket += 1,
                (TokenKind::Punct, "]") => bracket -= 1,
                (TokenKind::Punct, ";") if paren == 0 && bracket == 0 => {
                    return self.code_tok(ci).end;
                }
                (TokenKind::Punct, "{") if paren == 0 && bracket == 0 => {
                    return self.match_brace(ci).unwrap_or(self.text.len());
                }
                _ => {}
            }
            ci += 1;
        }
        self.text.len()
    }

    fn scan_fns(&mut self) {
        let mut fns = Vec::new();
        for ci in 0..self.code.len() {
            if self.code_kind(ci) != TokenKind::Ident || self.code_text(ci) != "fn" {
                continue;
            }
            // `fn` in a function-pointer type (`fn(i32) -> i32`) has no
            // name; an item's `fn` is followed by an identifier.
            let Some(name_ci) = (ci + 1 < self.code.len()).then_some(ci + 1) else {
                continue;
            };
            if self.code_kind(name_ci) != TokenKind::Ident {
                continue;
            }
            let name = self.code_text(name_ci).to_string();
            let (is_pub, head_ci) = self.fn_visibility(ci);
            let attrs_start = self.attrs_start(head_ci);
            let body = self.next_block(name_ci);
            let loops = match body {
                Some(span) => self.scan_loops(span),
                None => Vec::new(),
            };
            fns.push(FnItem {
                name,
                is_pub,
                line: self.code_tok(ci).line,
                attrs_start,
                body,
                loops,
            });
        }
        self.fns = fns;
    }

    /// Walks back from the `fn` keyword over its qualifier tokens
    /// (`pub`, `pub(crate)`, `const`, `unsafe`, `async`, `extern "C"`)
    /// and reports visibility plus the code index where the item header
    /// starts.
    fn fn_visibility(&self, fn_ci: usize) -> (bool, usize) {
        let mut is_pub = false;
        let mut head = fn_ci;
        let mut ci = fn_ci;
        while ci > 0 {
            let prev = ci - 1;
            match (self.code_kind(prev), self.code_text(prev)) {
                (TokenKind::Ident, "const" | "unsafe" | "async" | "extern") => {
                    head = prev;
                    ci = prev;
                }
                (TokenKind::Ident, "pub") => {
                    is_pub = true;
                    head = prev;
                    ci = prev;
                }
                (TokenKind::Str, _) => {
                    // The ABI string of `extern "C"`.
                    head = prev;
                    ci = prev;
                }
                (TokenKind::Punct, ")") => {
                    // `pub(crate)` / `pub(super)`: rewind to the `(` and
                    // let the next iteration find `pub`.
                    let mut j = prev;
                    while j > 0 && self.code_text(j) != "(" {
                        j -= 1;
                    }
                    if j > 0 && self.code_text(j - 1) == "pub" {
                        // Restricted visibility (`pub(crate)`) is not
                        // workspace-public; `pub` is consumed here.
                        head = j - 1;
                    }
                    break;
                }
                _ => break,
            }
        }
        (is_pub, head)
    }

    /// Byte offset where the contiguous attribute block above the item
    /// header at code index `head_ci` starts.
    fn attrs_start(&self, head_ci: usize) -> usize {
        let mut start = self.code_tok(head_ci).start;
        let mut ci = head_ci;
        while ci >= 2 && self.code_text(ci - 1) == "]" {
            // Walk back over one `#[ … ]` group.
            let mut depth = 0i32;
            let mut j = ci - 1;
            loop {
                match self.code_text(j) {
                    "]" => depth += 1,
                    "[" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return start;
                }
                j -= 1;
            }
            if j == 0 || self.code_text(j - 1) != "#" {
                break;
            }
            start = self.code_tok(j - 1).start;
            ci = j - 1;
        }
        start
    }

    /// Finds every `for`/`while`/`loop` in the byte span (a function
    /// body) and brace-matches each loop's body.
    fn scan_loops(&self, span: (usize, usize)) -> Vec<LoopItem> {
        let mut out = Vec::new();
        for ci in self.code_in_span(span) {
            if self.code_kind(ci) != TokenKind::Ident {
                continue;
            }
            match self.code_text(ci) {
                "loop" | "while" => {}
                "for" => {
                    // `for<'a>` bounds and `impl Trait for Type` are not
                    // loops: the former is followed by `<`, the latter
                    // preceded by a type (an ident, or a closing `>` that
                    // is not part of a match arm's `=>`).
                    if ci + 1 < self.code.len() && self.code_text(ci + 1) == "<" {
                        continue;
                    }
                    if ci > 0 && self.code_kind(ci - 1) == TokenKind::Ident {
                        continue;
                    }
                    if ci > 0
                        && self.code_text(ci - 1) == ">"
                        && !(ci > 1 && self.code_text(ci - 2) == "=")
                    {
                        continue;
                    }
                }
                _ => continue,
            }
            if let Some(body) = self.next_block(ci) {
                // Only loops whose body is inside the function span.
                if body.1 <= span.1 {
                    out.push(LoopItem {
                        line: self.code_tok(ci).line,
                        body,
                    });
                }
            }
        }
        out
    }
}
