//! A small but real Rust lexer.
//!
//! The analyzer's lints are lexical/structural, so everything downstream
//! depends on this layer getting the hard token boundaries right:
//! strings (plain, byte, C, raw with any number of `#`s), character
//! literals vs. lifetimes (`'a'` vs `'a`), nested block comments, raw
//! identifiers (`r#type`), and numeric literals that stop *before* a
//! range operator (`0..n`) or a method call (`1.max(2)`). A comment or
//! string is one token — its contents can never be mistaken for code,
//! which is what lets the lints scan for identifiers like `unwrap`
//! without tripping over prose or patterns that merely *mention* them.
//!
//! Anything the lexer cannot classify becomes [`TokenKind::Unknown`]; a
//! meta-test asserts the workspace's own sources lex with zero unknown
//! tokens, so an unknown token in practice means a source construct this
//! module must learn about before the lints can be trusted on it.

/// Classification of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (or a loop label).
    Lifetime,
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// Any string literal: `"…"`, `b"…"`, `c"…"`, `r"…"`, `r#"…"#`, …
    Str,
    /// Numeric literal, including suffixes (`1_000u64`, `0xff`, `1.5e-3`).
    Num,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// A single punctuation character (`{`, `:`, `#`, …).
    Punct,
    /// A character the lexer does not understand — see the module docs.
    Unknown,
}

/// One lexed token: classification plus byte span and 1-based start line.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or(self.src.len(), |&(off, _)| off)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    /// Consumes characters while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }

    /// Consumes an ident starting at the current position (which must be
    /// an ident-start char) and returns its text.
    fn eat_ident(&mut self) -> &'a str {
        let start = self.offset();
        self.bump();
        self.eat_while(is_ident_continue);
        &self.src[start..self.offset()]
    }

    /// Consumes the body of a double-quoted string with escapes; the
    /// opening `"` has already been consumed.
    fn eat_quoted(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body `"…"` terminated by `"` + `hashes`
    /// `#`s; the opening quote has already been consumed.
    fn eat_raw_quoted(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                return;
            }
        }
    }
}

/// Lexes `src` into its full token stream, comments included.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let start = cur.offset();
        let line = cur.line;
        let kind = lex_one(&mut cur, c);
        out.push(Token {
            kind,
            start,
            end: cur.offset(),
            line,
        });
    }
    out
}

fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    match c {
        '/' if cur.peek(1) == Some('/') => {
            cur.eat_while(|c| c != '\n');
            TokenKind::LineComment
        }
        '/' if cur.peek(1) == Some('*') => {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.bump(), cur.peek(0)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        depth -= 1;
                    }
                    (None, _) => break,
                    _ => {}
                }
            }
            TokenKind::BlockComment
        }
        '"' => {
            cur.bump();
            cur.eat_quoted();
            TokenKind::Str
        }
        '\'' => lex_quote(cur),
        c if c.is_ascii_digit() => lex_number(cur),
        c if is_ident_start(c) => lex_ident_or_prefixed(cur),
        c if c.is_ascii() => {
            cur.bump();
            TokenKind::Punct
        }
        _ => {
            cur.bump();
            TokenKind::Unknown
        }
    }
}

/// `'` starts either a lifetime/label (`'a`, `'static`) or a character
/// literal (`'a'`, `'\n'`, `'{'`). The discriminator: an ident after the
/// quote is a char literal iff a closing quote follows it.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // the opening '
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume escape payload up to the
            // closing quote (handles '\'', '\u{1F600}').
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek(0) {
                cur.bump();
                if c == '\'' {
                    break;
                }
            }
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            let mut ahead = 1;
            while cur.peek(ahead).is_some_and(is_ident_continue) {
                ahead += 1;
            }
            if cur.peek(ahead) == Some('\'') {
                for _ in 0..=ahead {
                    cur.bump();
                }
                TokenKind::Char
            } else {
                cur.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            // Punctuation or digit char literal: '{', '0'.
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Unknown,
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_hexdigit() || c == '_');
    } else {
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        // A fractional part — but `0..n` is a range and `1.max(2)` is a
        // method call, so only consume the dot when what follows can
        // only continue a float (a digit, or nothing ident-like: `1.;`).
        if cur.peek(0) == Some('.') {
            let after = cur.peek(1);
            let float_dot = match after {
                Some(c) => c.is_ascii_digit(),
                None => true,
            };
            let bare_dot = after.is_some_and(|c| !is_ident_start(c) && c != '.' && c != '"');
            if float_dot || bare_dot {
                cur.bump();
                cur.eat_while(|c| c.is_ascii_digit() || c == '_');
            }
        }
        if matches!(cur.peek(0), Some('e' | 'E'))
            && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(cur.peek(1), Some('+' | '-'))
                    && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            cur.bump();
            cur.bump();
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix (`u64`, `f32`, `usize`).
    cur.eat_while(is_ident_continue);
    TokenKind::Num
}

/// An ident, unless it is one of the literal prefixes (`r`, `b`, `br`,
/// `c`, `cr`) glued to a quote — or `r#` introducing a raw identifier.
fn lex_ident_or_prefixed(cur: &mut Cursor<'_>) -> TokenKind {
    let ident = cur.eat_ident();
    let raw_capable = matches!(ident, "r" | "br" | "cr");
    match cur.peek(0) {
        Some('"') if raw_capable || matches!(ident, "b" | "c") => {
            cur.bump();
            if raw_capable {
                cur.eat_raw_quoted(0);
            } else {
                cur.eat_quoted();
            }
            TokenKind::Str
        }
        Some('\'') if ident == "b" => {
            lex_quote(cur);
            TokenKind::Char
        }
        Some('#') if raw_capable => {
            let mut hashes = 0;
            while cur.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(hashes) == Some('"') {
                for _ in 0..=hashes {
                    cur.bump();
                }
                cur.eat_raw_quoted(hashes);
                TokenKind::Str
            } else if ident == "r" && hashes == 1 && cur.peek(1).is_some_and(is_ident_start) {
                // Raw identifier `r#type`.
                cur.bump();
                cur.eat_ident();
                TokenKind::Ident
            } else {
                TokenKind::Ident
            }
        }
        _ => TokenKind::Ident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).iter().map(|t| t.text(src).to_string()).collect()
    }

    #[test]
    fn raw_strings_with_hashes_are_one_token() {
        let src = r####"let s = r#"contains "quotes" and unwrap()"# ;"####;
        let toks = lex(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text(src).contains("unwrap()"));
        // The unwrap inside the raw string must not surface as an Ident.
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "unwrap"));
    }

    #[test]
    fn raw_string_two_hashes_swallows_single_hash_terminator() {
        let src = r###"r##"inner "# still inside"## x"###;
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert!(toks[0].text(src).ends_with(r###""##"###));
        assert_eq!(toks[1].text(src), "x");
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        for src in ["b\"bytes\"", "c\"cstr\"", "br\"raw\"", "cr#\"raw\"#"] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src} should be one token");
            assert_eq!(toks[0].kind, TokenKind::Str, "{src}");
        }
        assert_eq!(kinds("b'x'"), vec![TokenKind::Char]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ code";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text(src).ends_with("still comment */"));
        assert_eq!(toks[1].text(src), "code");
    }

    #[test]
    fn char_literal_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Punct, TokenKind::Lifetime, TokenKind::Ident]
        );
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::Char]);
        assert_eq!(kinds(r"'\u{1F600}'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'{'"), vec![TokenKind::Char]);
        // A labeled loop: label, colon, keyword.
        assert_eq!(
            kinds("'outer: loop"),
            vec![TokenKind::Lifetime, TokenKind::Punct, TokenKind::Ident]
        );
    }

    #[test]
    fn raw_identifiers() {
        let src = "r#type r#fn plain";
        assert_eq!(
            kinds(src),
            vec![TokenKind::Ident, TokenKind::Ident, TokenKind::Ident]
        );
        assert_eq!(texts(src)[0], "r#type");
    }

    #[test]
    fn numbers_stop_before_ranges_and_method_calls() {
        assert_eq!(
            texts("0..n"),
            vec!["0", ".", ".", "n"],
            "range dots are not a fraction"
        );
        assert_eq!(
            texts("1.max(2)"),
            vec!["1", ".", "max", "(", "2", ")"],
            "method-call dot is not a fraction"
        );
        assert_eq!(texts("1.5e-3"), vec!["1.5e-3"]);
        assert_eq!(texts("0xff_u32 1_000u64"), vec!["0xff_u32", "1_000u64"]);
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::Num]);
    }

    #[test]
    fn string_contents_never_leak_idents() {
        let src = r#"let msg = "call unwrap() or expect() here"; other"#;
        let idents: Vec<_> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(idents, vec!["let", "msg", "other"]);
    }

    #[test]
    fn line_numbers_advance_through_multiline_tokens() {
        let src = "a\n/* one\ntwo */\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4, "line count resumes after the comment");
    }

    #[test]
    fn tokens_are_ordered_and_nonoverlapping() {
        let src = r##"fn f<'a>(x: &'a str) -> u32 { x.len() as u32 + 0xff } // tail"##;
        let toks = lex(src);
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end, "tokens overlap at {}", t.start);
            assert!(t.end <= src.len());
            assert!(t.start < t.end);
            prev_end = t.end;
        }
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Unknown));
    }
}
