//! Tests pinning the paper's qualitative experimental claims on the
//! reproduction suite (the quantitative record lives in EXPERIMENTS.md).

use aapsm::core::{
    apply_correction, detect_conflicts, detect_greedy, plan_correction, CorrectionOptions,
    DetectConfig, GadgetKind, GraphKind, GreedyKind, TJoinMethod,
};
use aapsm::layout::synth;
use aapsm::prelude::*;
use aapsm::tjoin::{solve_gadget, TJoinInstance};

fn conflict_rich_design(seed: u64) -> PhaseGeometry {
    let rules = DesignRules::default();
    let layout = synth::generate(
        &synth::SynthParams {
            rows: 3,
            gates_per_row: 60,
            strap_frac: 0.6,
            jog_frac: 0.06,
            short_mid_frac: 0.05,
            seed,
            ..Default::default()
        },
        &rules,
    );
    extract_phase_geometry(&layout, &rules)
}

/// Table 1 QoR ordering: NP <= PCG <= FG << GB. The PCG-vs-FG comparison
/// is driven by greedy planarization, so single-conflict flips can happen
/// on individual seeds (the paper's "consistently" is about its own
/// benchmark suite); we allow 2% per-seed slack and require the aggregate
/// ordering strictly.
#[test]
fn table1_qor_ordering() {
    let mut pcg_total = 0usize;
    let mut fg_total = 0usize;
    for seed in [1u64, 2, 3, 4, 5] {
        let geom = conflict_rich_design(seed);
        let pcg = detect_conflicts(&geom, &DetectConfig::default());
        let fg = detect_conflicts(
            &geom,
            &DetectConfig {
                graph: GraphKind::Feature,
                ..DetectConfig::default()
            },
        );
        let gb = detect_greedy(&geom, GraphKind::PhaseConflict, GreedyKind::Spanning);
        let np = pcg.stats.bipartize_conflicts + geom.direct_conflicts.len();
        assert!(np <= pcg.conflict_count(), "seed {seed}");
        assert!(
            pcg.conflict_count() as f64 <= fg.conflict_count() as f64 * 1.02 + 1.0,
            "seed {seed}: PCG {} far above FG {}",
            pcg.conflict_count(),
            fg.conflict_count()
        );
        assert!(
            gb.conflict_count() as f64 >= 1.5 * pcg.conflict_count().max(1) as f64,
            "seed {seed}: GB should be far worse ({} vs {})",
            gb.conflict_count(),
            pcg.conflict_count()
        );
        pcg_total += pcg.conflict_count();
        fg_total += fg.conflict_count();
    }
    assert!(
        pcg_total <= fg_total,
        "aggregate: PCG {pcg_total} must not exceed FG {fg_total}"
    );
}

/// Table 1 runtime claim: generalized gadgets build strictly smaller
/// matching instances than optimized gadgets on high-degree duals.
#[test]
fn generalized_gadgets_are_smaller() {
    let mut edges = Vec::new();
    let mut t = vec![false];
    for l in 0..20usize {
        edges.push((0, l + 1, 1));
        t.push(l % 2 == 0);
    }
    let inst = TJoinInstance::new(21, edges, t).expect("valid");
    let (_, opt) = solve_gadget(&inst, GadgetKind::Optimized).expect("feasible");
    let (_, gen) = solve_gadget(&inst, GadgetKind::Generalized { max_group: 8 }).expect("feasible");
    assert!(gen.matching_nodes < opt.matching_nodes);
}

/// All T-join engines give identical conflict weights (exactness).
#[test]
fn engines_agree() {
    let geom = conflict_rich_design(7);
    let weights: Vec<i64> = [
        TJoinMethod::Gadget(GadgetKind::Optimized),
        TJoinMethod::Gadget(GadgetKind::default()),
        TJoinMethod::ShortestPath,
    ]
    .into_iter()
    .map(|tjoin| {
        detect_conflicts(
            &geom,
            &DetectConfig {
                tjoin,
                ..DetectConfig::default()
            },
        )
        .conflicts
        .iter()
        .map(|c| c.weight)
        .sum()
    })
    .collect();
    assert!(weights.windows(2).all(|w| w[0] == w[1]), "{weights:?}");
}

/// Table 2 claims: area increase stays in a single-digit-percent band and
/// a sizable fraction of conflicts is corrected by a single space.
#[test]
fn table2_band() {
    let rules = DesignRules::default();
    for d in synth::modification_suite().into_iter().take(3) {
        let layout = synth::generate(&d.params, &rules);
        let geom = extract_phase_geometry(&layout, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        if report.conflict_count() == 0 {
            continue;
        }
        let plan = plan_correction(
            &geom,
            &report.conflicts,
            &rules,
            &CorrectionOptions::default(),
        );
        assert!(plan.uncorrectable.is_empty(), "{}", d.name);
        let outcome = apply_correction(&layout, &plan, &rules);
        assert!(outcome.verified, "{}", d.name);
        assert!(
            outcome.area_increase_pct > 0.0 && outcome.area_increase_pct < 15.0,
            "{}: {:.2}% outside the paper-like band",
            d.name,
            outcome.area_increase_pct
        );
        assert!(
            plan.max_conflicts_single_line >= 1,
            "{}: at least one line corrects some conflict",
            d.name
        );
        assert!(
            plan.grid_line_count() <= report.conflict_count(),
            "{}: sharing lines across conflicts",
            d.name
        );
    }
}
