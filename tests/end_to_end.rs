//! Cross-crate integration tests: the full flow on fixtures and synthetic
//! designs, exercised through the public umbrella API.

use aapsm::core::{detect_conflicts, DetectConfig, FlowConfig, GraphKind};
use aapsm::gds::{read_gds, write_gds};
use aapsm::layout::{fixtures, synth};
use aapsm::prelude::*;

#[test]
fn every_conflicting_fixture_is_fixed_by_the_flow() {
    let rules = DesignRules::default();
    let layouts = [
        ("gate_over_strap", fixtures::gate_over_strap(&rules)),
        ("stacked_jog", fixtures::stacked_jog(&rules)),
        ("short_middle", fixtures::short_middle_wire(&rules)),
        ("bus", fixtures::strap_under_bus(7, &rules)),
    ];
    for (name, layout) in layouts {
        assert!(
            check_assignable(&extract_phase_geometry(&layout, &rules)).is_err(),
            "{name} should start unassignable"
        );
        let result = run_flow(&layout, &rules, &FlowConfig::default())
            .unwrap_or_else(|e| panic!("{name}: flow failed: {e}"));
        assert!(result.verified, "{name}: correction must verify");
        assert!(
            result.correction.area_increase_pct < 30.0,
            "{name}: area increase {:.1}% is excessive",
            result.correction.area_increase_pct
        );
    }
}

#[test]
fn synthetic_designs_roundtrip_through_gds_and_flow() {
    let rules = DesignRules::default();
    for seed in [3u64, 4, 5] {
        let layout = synth::generate(
            &synth::SynthParams {
                rows: 2,
                gates_per_row: 40,
                seed,
                ..Default::default()
            },
            &rules,
        );
        // GDSII round trip preserves the layout exactly.
        let back = read_gds(&write_gds(&layout, "TOP")).expect("gds roundtrip");
        assert_eq!(back, layout);
        // Flow fixes whatever conflicts exist.
        let result = run_flow(&layout, &rules, &FlowConfig::default()).expect("flow");
        assert!(result.verified, "seed {seed}");
    }
}

#[test]
fn detection_agrees_with_independent_oracle_on_random_designs() {
    // The layout is assignable iff detection finds zero conflicts — across
    // both graph reductions.
    let rules = DesignRules::default();
    for seed in 0..8u64 {
        let layout = synth::generate(
            &synth::SynthParams {
                rows: 2,
                gates_per_row: 25,
                strap_frac: 0.5,
                jog_frac: 0.08,
                seed,
                ..Default::default()
            },
            &rules,
        );
        let geom = extract_phase_geometry(&layout, &rules);
        let assignable = check_assignable(&geom).is_ok();
        for kind in [GraphKind::PhaseConflict, GraphKind::Feature] {
            let report = detect_conflicts(
                &geom,
                &DetectConfig {
                    graph: kind,
                    ..DetectConfig::default()
                },
            );
            assert_eq!(
                report.conflict_count() == 0,
                assignable,
                "seed {seed} {kind:?}"
            );
        }
    }
}

#[test]
fn flow_is_idempotent_on_corrected_layouts() {
    let rules = DesignRules::default();
    let layout = fixtures::strap_under_bus(5, &rules);
    let first = run_flow(&layout, &rules, &FlowConfig::default()).expect("first pass");
    assert!(first.verified);
    let second =
        run_flow(&first.correction.modified, &rules, &FlowConfig::default()).expect("second pass");
    assert_eq!(second.detection.conflict_count(), 0);
    assert_eq!(second.correction.modified, first.correction.modified);
}

#[test]
fn text_format_roundtrip_preserves_flow_results() {
    let rules = DesignRules::default();
    let layout = fixtures::short_middle_wire(&rules);
    let text = aapsm::layout::write_layout(&layout);
    let back = aapsm::layout::parse_layout(&text).expect("parse");
    assert_eq!(back, layout);
    let a = run_flow(&layout, &rules, &FlowConfig::default()).expect("flow a");
    let b = run_flow(&back, &rules, &FlowConfig::default()).expect("flow b");
    assert_eq!(a.detection.conflict_count(), b.detection.conflict_count());
    assert_eq!(a.plan.cuts.len(), b.plan.cuts.len());
}
